package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/anncache"
	"repro/internal/annotation"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/dvs"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/power"
)

// This file is the serving half of the adaptive quality ladder
// (protocol v4): a session starts at the requested rung, the client may
// ask for a different rung mid-stream with quality-switch messages, and
// the server answers by swapping to the matching precomputed variant at
// the next I-frame, announcing each swap with an in-band control marker
// so the client can follow backlight levels and accounting.

// variantGetter resolves the prepared variant for one quality rung,
// hitting the two-tier artifact cache. Both the server and the proxy
// close over their own tier when building one.
type variantGetter func(ctx context.Context, qi int) (*variant, error)

// variantFor is the shared cache lookup behind variantGetter: encode
// once per (content digest, rung, encoder config), serve forever.
func variantFor(ctx context.Context, t tier, digest string, src core.Source, track *annotation.Track, qi int, cfg EncodeConfig) (*variant, error) {
	vAny, err := t.getOrCompute(ctx,
		anncache.Key{Kind: "variant", Digest: digest, Quality: qi}, encSig(cfg), variantCodec,
		func(ctx context.Context) (any, int64, error) {
			v, err := prepareVariant(ctx, src, track, qi, cfg)
			if err != nil {
				return nil, 0, err
			}
			return v, v.cost(), nil
		})
	if err != nil {
		return nil, err
	}
	return vAny.(*variant), nil
}

// rungSwitch records one mid-stream rung change: frame is the global
// index of the first frame served at the new rung.
type rungSwitch struct {
	frame int
	rung  int
}

// ladderMetrics are the quality-ladder observability handles shared by
// server, proxy and client roles.
type ladderMetrics struct {
	up   *obs.Counter
	down *obs.Counter
	rung *obs.Gauge
}

func newLadderMetrics(reg *obs.Registry, role string) ladderMetrics {
	l := obs.L("role", role)
	return ladderMetrics{
		up: reg.Counter("quality_switch_total",
			"Mid-stream quality-ladder rung switches.", l, obs.L("direction", "up")),
		down: reg.Counter("quality_switch_total",
			"Mid-stream quality-ladder rung switches.", l, obs.L("direction", "down")),
		rung: reg.Gauge("ladder_rung",
			"Current quality-ladder rung (0 = best).", l),
	}
}

// record notes a switch from rung old to rung new (up = toward rung 0,
// i.e. better quality).
func (m ladderMetrics) record(old, new int) {
	if new < old {
		m.up.Inc()
	} else {
		m.down.Inc()
	}
	m.rung.Set(float64(new))
}

// sendAdaptive streams an adaptive (v4) session: like sendVariant, but
// a reader goroutine watches the connection's client→server half for
// quality-switch messages and the frame loop swaps variants at I-frame
// boundaries, writing a control marker before the first frame of each
// new rung. startQi is both the first rung and the session's quality
// ceiling — the client asked for that much clipping, so the ladder only
// ever degrades from there and recovers back, never past it.
//
// Variants share the encoder config, so every rung has the same frame
// count and the same I-frame positions; the header's FrameCount (which
// counts real frames, not control packets) holds across switches.
func sendAdaptive(ctx context.Context, conn *deadlineConn, src core.Source, track *annotation.Track,
	v *variant, getVariant variantGetter, levelsChunk []byte, from, startQi int,
	reg *obs.Registry, role string, framesSent, bytesSent *obs.Counter) (sent uint64, switches []rungSwitch, err error) {
	sp := obs.StartSpan(ctx, "stream.send_adaptive")
	defer sp.End()
	sp.SetAttrInt("start_rung", int64(startQi))

	maxQi := len(track.Quality) - 1
	var desired atomic.Int64
	desired.Store(int64(startQi))
	// The handshake read deadline is long spent by now; quality switches
	// may arrive at any point in the session (or never), so reads on the
	// control half must not time out. Writes keep their own deadline.
	raw := conn.Conn
	raw.SetReadDeadline(time.Time{})
	go func() {
		for {
			rung, err := ReadQualitySwitch(raw)
			if err != nil {
				return
			}
			// Clamp to the ladder: the requested rung is the session's
			// ceiling, the worst rung its floor.
			if rung < startQi {
				rung = startQi
			}
			if rung > maxQi {
				rung = maxQi
			}
			desired.Store(int64(rung))
		}
	}()

	lm := newLadderMetrics(reg, role)
	cw0 := &countingWriter{w: conn}
	// Like sendVariant, the counting wrapper is the single source of
	// truth for bytes on the wire: it is read exactly once after the
	// body finishes, feeding both the return value and the bytesSent
	// counter, so mid-stream failures report what actually went out.
	err = func() error {
		width, height := src.Size()
		extra := map[uint8][]byte{
			container.ChunkDecodeCycles: v.cyclesChunk,
			container.ChunkSceneBytes:   v.scenesChunk,
		}
		if from > 0 {
			extra[container.ChunkResumeOffset] = container.EncodeResumeOffset(uint32(from))
		}
		if levelsChunk != nil {
			extra[container.ChunkDeviceLevels] = levelsChunk
		}
		cw, err := container.NewWriter(cw0, container.Header{
			W: width, H: height, FPS: src.FPS(),
			FrameCount:  len(v.frames) - from,
			Annotations: track,
			Extra:       extra,
		})
		if err != nil {
			return err
		}
		// The stream opens by announcing the rung actually granted. The
		// request's quality budget crossed the wire quantized, so the
		// client's own index arithmetic over the decoded track can land one
		// rung off; the announcement — like every later switch marker — is
		// authoritative.
		if err := cw.WriteFrame(qualitySwitchMarker(startQi)); err != nil {
			return err
		}
		lm.rung.Set(float64(startQi))
		cur := startQi
		n := len(v.frames)
		i := from
		for i < n {
			// Serve the current rung up to the next I-frame boundary as
			// one zero-copy wire run. Rung changes land on I-frames
			// only: a P-frame from a different variant would reference
			// a reconstruction the client does not have (the session's
			// first frame is exempt — it already is the negotiated
			// rung, announced above).
			j := i + 1
			for j < n && v.frames[j].Type != codec.IFrame {
				j++
			}
			if err := sendWire(ctx, cw, v, i, j, framesSent); err != nil {
				return err
			}
			i = j
			if i >= n {
				break
			}
			if d := int(desired.Load()); d != cur {
				if nv, verr := getVariant(ctx, d); verr == nil && len(nv.frames) == n {
					if err := cw.WriteFrame(qualitySwitchMarker(d)); err != nil {
						return err
					}
					lm.record(cur, d)
					v, cur = nv, d
					switches = append(switches, rungSwitch{frame: i, rung: d})
				}
				// On a variant miss keep serving the current rung; the
				// desire persists and the next I-frame retries.
			}
		}
		sp.SetAttrInt("final_rung", int64(cur))
		return nil
	}()
	bytesSent.Add(cw0.n)
	sp.SetAttrInt("bytes", int64(cw0.n))
	sp.SetAttrInt("quality_switches", int64(len(switches)))
	return cw0.n, switches, err
}

// consumeAdaptive is the client half of an adaptive (v4) session:
// consume's decode-and-account loop, plus the ladder control loop — a
// playout-buffer tracker fed by deliveries, a decision at every scene
// boundary sent upstream as a quality-switch message, and the server's
// in-band markers moving the rung (and with it the backlight level
// column) mid-stream. The server is authoritative: the client's rung
// state follows markers, not its own requests.
func (c *Client) consumeAdaptive(ctx context.Context, s *session, rw io.ReadWriter, req Request) error {
	res := s.res
	cr := &countingReader{r: rw}
	magic, remoteErr, err := ReadResponseMagic(cr)
	if err != nil {
		if errors.Is(err, ErrBadMagic) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrTruncatedStream, err)
	}
	if remoteErr != nil {
		if strings.Contains(remoteErr.Error(), "bad request") {
			// A pre-v4 server cannot parse the adaptive framing: fall
			// back one protocol version.
			return errDowngrade
		}
		return remoteErr
	}
	reader, err := container.NewReader(io.MultiReader(&sliceReader{b: magic[:]}, cr))
	if err != nil {
		return classifyStreamErr(err)
	}
	hdr := reader.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		return err
	}

	degradedTotal := c.Obs.Counter("stream_client_degraded_total",
		"Side channels dropped in favour of degraded playback.")

	var resumeOffset uint32
	if data, ok := hdr.Extra[container.ChunkResumeOffset]; ok {
		off, err := container.DecodeResumeOffset(data)
		if err != nil {
			return classifyStreamErr(err)
		}
		if off > req.StartFrame {
			return fmt.Errorf("%w: resume offset %d beyond requested frame %d",
				ErrProtocol, off, req.StartFrame)
		}
		resumeOffset = off
	}
	if hdr.FrameCount > 0 {
		s.expected = resumeOffset + uint32(hdr.FrameCount)
	}

	var records []annotation.Record
	qi := 0
	if hdr.AnnotationsErr != nil {
		s.degrade("annotations", degradedTotal)
	}
	if hdr.Annotations != nil {
		res.Annotated = true
		res.Scenes = len(hdr.Annotations.Records)
		res.BytesAnn = hdr.Annotations.Size()
		s.ledger.AddAnnotationBytes(int64(res.BytesAnn))
		records = hdr.Annotations.Records
		s.qualities = hdr.Annotations.Quality
		// This connection starts at the rung the request named — on a
		// resume that is the rung in force when the last one died.
		qi = hdr.Annotations.QualityIndex(req.Quality)
	}
	s.curQi = qi
	s.reqRung = qi
	s.ledger.SetRung(qi)
	ceilGuessed := false
	if s.ceilQi < 0 {
		s.ceilQi = qi
		ceilGuessed = true
	}
	buildLadder := func(start int) {
		cfg := *c.Ladder
		cfg.StartRung = start
		if cfg.Battery != nil && cfg.Device == nil {
			cfg.Device = c.Device
		}
		lad, err := adaptive.NewLadder(hdr.Annotations, cfg)
		if err != nil {
			// A broken ladder config degrades to a fixed-rung session on
			// the v4 wire rather than killing playback.
			s.lad = nil
			s.degrade("ladder", degradedTotal)
		} else {
			s.lad = lad
		}
	}
	if s.lad == nil && hdr.Annotations != nil && c.Ladder != nil && !s.degraded["ladder"] {
		buildLadder(s.ceilQi)
	}
	var serverLevels [][]int
	if data, ok := hdr.Extra[container.ChunkDeviceLevels]; ok {
		levels, err := annotation.DecodeLevels(data)
		if err != nil {
			s.degrade("device_levels", degradedTotal)
		} else if hdr.Annotations != nil && len(levels) == len(records) {
			serverLevels = levels
			res.ServerLevels = true
		}
	}
	if data, ok := hdr.Extra[container.ChunkDecodeCycles]; ok {
		cycles, err := dvs.DecodeCycles(data)
		if err != nil {
			s.degrade("decode_cycles", degradedTotal)
		} else {
			res.DecodeCycles = cycles
		}
	}
	if data, ok := hdr.Extra[container.ChunkSceneBytes]; ok {
		scenes, err := netsched.DecodeScenes(data)
		if err != nil {
			s.degrade("scene_bytes", degradedTotal)
		} else {
			res.NetScenes = scenes
		}
	}

	framesDecoded := c.Obs.Counter("client_frames_decoded_total",
		"Frames decoded by the playback client.")
	backlightGauge := c.Obs.Gauge("client_backlight_level",
		"Backlight level currently set (0..255).")
	lm := newLadderMetrics(c.Obs, "client")

	frameSeconds := 1 / float64(hdr.FPS)
	if s.buf == nil {
		s.buf = netsched.NewBuffer(float64(hdr.FPS))
	}
	var batModel *power.Model
	if c.Ladder != nil && c.Ladder.Battery != nil {
		batModel = power.DefaultModel(c.Device)
	}

	// The per-frame backlight level is a pure function of (scene, rung):
	// the server's negotiated table when present, the device LUT
	// otherwise. Recomputing it each frame makes mid-scene rung switches
	// land on exactly the frame the new rung's stream starts at.
	levelFor := func(si, rung int) int {
		if si >= len(records) {
			return display.MaxLevel
		}
		if serverLevels != nil && si < len(serverLevels) && rung < len(serverLevels[si]) {
			return serverLevels[si][rung]
		}
		rec := records[si]
		if rung >= len(rec.Targets) {
			return display.MaxLevel
		}
		return c.Device.LevelFor(float64(rec.Targets[rung]) / 255)
	}

	// Scene walk state: sIdx/inScene track which record the next frame
	// falls in. A resumed connection replays the walk up to the stream's
	// start so scene indexes match a continuous run.
	s.sceneIdx = 0
	sIdx, inScene := 0, 0
	for g := uint32(0); g < resumeOffset && sIdx < len(records); g++ {
		for sIdx < len(records) && records[sIdx].Frames == 0 {
			sIdx++
		}
		if sIdx >= len(records) {
			break
		}
		if inScene == 0 {
			s.sceneIdx = sIdx + 1
		}
		inScene++
		if inScene >= records[sIdx].Frames {
			sIdx++
			inScene = 0
		}
	}

	total := uint32(0)
	if hdr.Annotations != nil {
		total = uint32(hdr.Annotations.TotalFrames())
	}

	announced := false
	g := resumeOffset
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ef, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return classifyStreamErr(err)
		}
		if rung, isCtl := parseControlFrame(ef); isCtl {
			// In-band control packet: a quality-switch marker moves the
			// session to a new rung starting at the next frame; unknown
			// control kinds are skipped.
			if rung < 0 || rung >= len(s.qualities) {
				continue
			}
			if !announced {
				// A v4 stream opens with one marker announcing the rung
				// the server actually granted. The request's budget
				// crossed the wire quantized, so the QualityIndex guess
				// above can be one rung off — the announcement corrects
				// the starting rung (and, on the session's first
				// connection, the ladder ceiling) without counting as a
				// switch.
				announced = true
				if rung != s.curQi {
					s.curQi = rung
					s.reqRung = rung
					s.ledger.SetRung(rung)
					if ceilGuessed && s.lad != nil {
						s.ceilQi = rung
						buildLadder(rung)
					}
				}
				continue
			}
			if rung != s.curQi {
				lm.record(s.curQi, rung)
				s.curQi = rung
				s.ledger.QualitySwitch(rung)
				res.QualitySwitches++
			}
			continue
		}
		sp := c.Obs.StartSpan("client.decode")
		f, err := dec.Decode(ef)
		sp.End()
		if err != nil {
			return err
		}
		fresh := g >= s.emitted
		if hdr.Annotations != nil {
			for sIdx < len(records) && records[sIdx].Frames == 0 {
				sIdx++
			}
			sceneStart := inScene == 0 && sIdx < len(records)
			if sceneStart {
				s.sceneIdx = sIdx + 1
				if fresh && s.lad != nil {
					// One ladder decision per scene boundary. Decisions
					// start once the buffer has primed (or is in actual
					// deficit): a stream's own startup must not read as
					// congestion.
					lead := s.buf.LeadSeconds()
					if !s.primed && lead >= s.lad.Config().DownLead {
						s.primed = true
					}
					if s.primed || lead < 0 {
						remaining := 0.0
						if exp := s.expected; exp > g {
							remaining = float64(exp-g) * frameSeconds
						} else if total > g {
							remaining = float64(total-g) * frameSeconds
						}
						d := s.lad.Decide(adaptive.Inputs{
							LeadSeconds:      lead,
							RemainingSeconds: remaining,
						})
						if d != s.reqRung {
							if err := WriteQualitySwitch(rw, d); err != nil {
								return fmt.Errorf("%w: %v", ErrTruncatedStream, err)
							}
							s.reqRung = d
						}
					}
				}
			}
			if lvl := levelFor(sIdx, s.curQi); lvl != s.level {
				spb := c.Obs.StartSpan("client.backlight_set")
				s.level = lvl
				spb.End()
				backlightGauge.Set(float64(s.level))
			}
			if sceneStart && fresh {
				s.ledger.StartScene(sIdx, s.level)
			}
			inScene++
			if sIdx < len(records) && inScene >= records[sIdx].Frames {
				sIdx++
				inScene = 0
			}
		}
		if !fresh {
			// Replayed frame (I-frame rewind on resume): decode warms the
			// predictor, but it was already delivered.
			g++
			continue
		}
		framesDecoded.Inc()
		if s.prev >= 0 && s.level != s.prev {
			res.Switches++
		}
		s.prev = s.level
		s.levelSum += float64(s.level)
		s.lumaSum += f.AvgLuma()

		state := power.State{Decoding: true, NetworkActive: true, BacklightLevel: s.level}
		res.Trace.Append(frameSeconds, state)
		refState := state
		refState.BacklightLevel = display.MaxLevel
		res.Ref.Append(frameSeconds, refState)
		s.ledger.Frame(frameSeconds, s.level)
		if batModel != nil {
			// The live gauge drains by the modeled draw of this frame;
			// the ladder's battery floor reads it at the next decision.
			c.Ladder.Battery.Drain(batModel.Instant(state) * frameSeconds)
		}

		if c.OnFrame != nil {
			c.OnFrame(res.Frames, f, s.level)
		}
		res.RungByFrame = append(res.RungByFrame, uint8(s.curQi))
		res.Frames++
		s.emitted++
		g++
		s.buf.Deliver(1)
	}
	res.BytesStream += cr.n
	s.ledger.AddWireBytes(int64(cr.n))
	c.Obs.Counter("client_bytes_received_total",
		"Bytes received from the stream connection.").Add(uint64(cr.n))
	if s.expected > 0 && s.emitted < s.expected {
		return fmt.Errorf("%w: got %d of %d frames", ErrTruncatedStream, s.emitted, s.expected)
	}
	return nil
}
