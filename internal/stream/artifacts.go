package stream

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/anncache"
	"repro/internal/annotation"
	"repro/internal/annstore"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/obs"
)

// This file is the boundary between the in-memory artifact cache and
// the persistent store: serialisation for each artifact kind, and the
// two-level lookup (memory miss → disk → compute) the server and proxy
// share. The memory tier keeps its existing keys and semantics; the
// disk tier sees the same keys, except that encoded variants carry the
// encoder parameters in their digest — a restart with a different
// -gop/-qscale must recompute rather than serve stale bits.

// artifactCodec maps one artifact kind across the disk boundary.
// decode returns the in-memory value and its cache cost. attachRef,
// when non-nil, is handed the store file location of the artifact's
// payload after a successful decode or write-through, so kinds whose
// serving path can stream straight from disk (variants) learn where
// their bytes live.
type artifactCodec struct {
	encode    func(v any) ([]byte, error)
	decode    func(b []byte) (any, int64, error)
	attachRef func(v any, ref annstore.Ref)
}

var trackCodec = artifactCodec{
	encode: func(v any) ([]byte, error) { return v.(*annotation.Track).Encode(), nil },
	decode: func(b []byte) (any, int64, error) {
		t, err := annotation.Decode(b)
		if err != nil {
			return nil, 0, err
		}
		return t, int64(len(b)), nil
	},
}

var levelsCodec = artifactCodec{
	encode: func(v any) ([]byte, error) { return v.([]byte), nil },
	decode: func(b []byte) (any, int64, error) { return b, int64(len(b)), nil },
}

var variantCodec = artifactCodec{
	encode: func(v any) ([]byte, error) { return encodeVariantArtifact(v.(*variant)) },
	decode: func(b []byte) (any, int64, error) {
		v, err := decodeVariantArtifact(b)
		if err != nil {
			return nil, 0, err
		}
		return v, v.cost(), nil
	},
	attachRef: func(v any, ref annstore.Ref) {
		vv := v.(*variant)
		// The wire region starts right after the artifact's preamble
		// (version byte + frame count) and spans the frame packets.
		vv.ref = wireFileRef{
			path: ref.Path,
			off:  ref.Off + variantWirePrefix,
			n:    int64(len(vv.wire)),
		}
	},
}

// variantArtifactVersion versions the variant serialisation; bumping it
// orphans old store entries into recomputation rather than misparsing.
const variantArtifactVersion = 1

// variantWirePrefix is the artifact preamble before the frame-packet
// region: the version byte and the u32 frame count.
const variantWirePrefix = 1 + 4

// encodeVariantArtifact flattens a prepared variant — every encoded
// frame plus the decode-cycle and scene-byte side channels — into one
// self-contained byte string for the store. The frame region reuses
// the container's frame-packet framing, so a sealed variant's wire
// form is embedded verbatim: what the store holds on disk between the
// preamble and the trailing chunks is, byte for byte, what a session
// streams to the socket — the property that makes sendfile serving of
// store artifacts sound.
func encodeVariantArtifact(v *variant) ([]byte, error) {
	if v.wire == nil {
		if err := v.seal(); err != nil {
			return nil, err
		}
	}
	size := variantWirePrefix + len(v.wire) + 4 + len(v.cyclesChunk) + 4 + len(v.scenesChunk)
	b := make([]byte, 0, size)
	b = append(b, variantArtifactVersion)
	b = binary.BigEndian.AppendUint32(b, uint32(len(v.frames)))
	b = append(b, v.wire...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(v.cyclesChunk)))
	b = append(b, v.cyclesChunk...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(v.scenesChunk)))
	b = append(b, v.scenesChunk...)
	return b, nil
}

func decodeVariantArtifact(b []byte) (*variant, error) {
	orig := b
	bad := fmt.Errorf("stream: malformed variant artifact")
	take := func(n int) ([]byte, bool) {
		if n < 0 || len(b) < n {
			return nil, false
		}
		out := b[:n]
		b = b[n:]
		return out, true
	}
	hdr, ok := take(5)
	if !ok || hdr[0] != variantArtifactVersion {
		return nil, bad
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	// Each frame needs at least its 6-byte preamble; this bounds n
	// against a hostile count before allocating.
	if n < 0 || n > len(b)/6+1 {
		return nil, bad
	}
	// The frame region is the variant's wire form: record each packet's
	// offset while walking it and alias it wholesale afterwards, so the
	// decoded variant serves zero-copy from the store's byte string.
	v := &variant{
		frames: make([]*codec.EncodedFrame, 0, n),
		offs:   make([]uint32, 0, n+1),
	}
	wireStart := len(orig) - len(b)
	for i := 0; i < n; i++ {
		v.offs = append(v.offs, uint32(len(orig)-len(b)-wireStart))
		pre, ok := take(6)
		if !ok {
			return nil, bad
		}
		data, ok := take(int(binary.BigEndian.Uint32(pre[2:])))
		if !ok {
			return nil, bad
		}
		v.frames = append(v.frames, &codec.EncodedFrame{
			Type:   codec.FrameType(pre[0]),
			QScale: int(pre[1]),
			Data:   data,
		})
	}
	wireEnd := len(orig) - len(b)
	v.offs = append(v.offs, uint32(wireEnd-wireStart))
	v.wire = orig[wireStart:wireEnd:wireEnd]
	chunk := func() ([]byte, bool) {
		lb, ok := take(4)
		if !ok {
			return nil, false
		}
		return take(int(binary.BigEndian.Uint32(lb)))
	}
	if v.cyclesChunk, ok = chunk(); !ok {
		return nil, bad
	}
	if v.scenesChunk, ok = chunk(); !ok {
		return nil, bad
	}
	if len(b) != 0 {
		return nil, bad
	}
	return v, nil
}

// encSig identifies the encoder parameters a variant was produced with;
// it is folded into the variant's disk digest so a store shared across
// restarts never serves bits encoded under different codec settings.
func encSig(cfg EncodeConfig) string {
	return fmt.Sprintf("+g%dq%d", cfg.GOP, cfg.QScale)
}

// tier is the two-level artifact lookup: the byte-budgeted memory LRU
// in front of an optional persistent store — and, when the process is
// clustered, the shard owner's copy between the store and computation.
type tier struct {
	cache *anncache.Cache
	store *annstore.Store
	// node, when non-nil, routes misses through the cluster's rendezvous
	// hash: a non-owner fills from the shard owner before computing.
	node *cluster.Node
	// clip is the clip-name hint attached to peer fetches (digests are
	// one-way; the hint lets a cold owner map the digest back to its
	// catalog). Empty disables peer fill (peer-facing resolution must
	// not re-fetch).
	clip string
}

// getOrCompute resolves key through the memory tier; on a memory miss
// (still under the cache's single-flight, so concurrent sessions share
// one disk read or one computation) it tries the store, and only then
// computes. Fresh computations are written through to the store, so
// the artifact survives the process. digestSuffix, when non-empty, is
// appended to the key's digest for the disk tier only.
//
// The whole lookup runs under an anncache.lookup span (a child of ctx's
// active span, so a cold miss shows the cache → store → pipeline chain
// inside the request's trace). The outcome attribute distinguishes a
// memory hit from a store hit from a computation; single-flight waiters
// report "hit" — from their side the value was served, not computed.
func (t tier) getOrCompute(ctx context.Context, key anncache.Key, digestSuffix string, cod artifactCodec, compute func(context.Context) (any, int64, error)) (any, error) {
	lctx, sp := obs.StartSpanCtx(ctx, "anncache.lookup")
	defer sp.End()
	sp.SetAttr("kind", key.Kind)
	outcome := "hit"
	v, err := t.cache.GetOrCompute(key, func() (any, int64, error) {
		skey := key
		skey.Digest += digestSuffix
		if t.store != nil {
			ssp := obs.StartSpan(lctx, "annstore.get")
			ssp.SetAttr("kind", key.Kind)
			data, found := t.store.Get(skey)
			ssp.End()
			if found {
				if v, cost, err := cod.decode(data); err == nil {
					// The Get above CRC-verified the artifact; a file
					// ref taken now points at that same verified
					// content (artifacts change only by atomic rename).
					if cod.attachRef != nil {
						if ref, ok := t.store.GetRef(skey); ok {
							cod.attachRef(v, ref)
						}
					}
					outcome = "store_hit"
					return v, cost, nil
				}
				// A decode failure here is format drift, not disk
				// damage (the store already CRC-verified the bytes);
				// fall through and overwrite with a fresh computation.
			}
		}
		if v, cost, ok := t.peerFill(lctx, key, skey, digestSuffix, cod); ok {
			outcome = "peer_fill"
			return v, cost, nil
		}
		outcome = "computed"
		v, cost, err := compute(lctx)
		if err != nil {
			return nil, 0, err
		}
		if t.store != nil {
			if b, encErr := cod.encode(v); encErr == nil {
				// Best effort: a full disk must not fail the session.
				psp := obs.StartSpan(lctx, "annstore.put")
				psp.SetAttr("kind", key.Kind)
				if t.store.Put(skey, b) == nil && cod.attachRef != nil {
					// The fresh artifact is durable: later sessions in
					// this process may stream it from the file too.
					if ref, ok := t.store.GetRef(skey); ok {
						cod.attachRef(v, ref)
					}
				}
				psp.End()
			}
		}
		return v, cost, nil
	})
	sp.SetAttr("outcome", outcome)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	return v, err
}

// peerFill tries to fill a local miss from the artifact's shard owner.
// It runs inside the cache's single-flight, so however many sessions
// miss concurrently, the cluster sees one fetch. Routing is by (kind,
// content digest) — quality and device are deliberately excluded so
// every variant of a clip lands on one owner and the annotation runs
// exactly once fleet-wide. Any failure (owner down, breaker open,
// checksum mismatch, undecodable bytes) returns ok=false and the caller
// computes locally: the cluster accelerates, it never gates.
func (t tier) peerFill(ctx context.Context, key, skey anncache.Key, digestSuffix string, cod artifactCodec) (any, int64, bool) {
	if t.node == nil || t.clip == "" {
		return nil, 0, false
	}
	ctx, sp := obs.StartSpanCtx(ctx, "cluster.route")
	defer sp.End()
	sp.SetAttr("kind", key.Kind)
	owner, self := t.node.Owner(key.Kind, key.Digest)
	sp.SetAttr("owner", owner)
	decide := func(d string) {
		sp.SetAttr("decision", d)
		t.node.RecordRoute(d)
	}
	if self || owner == "" {
		decide("local_owner")
		return nil, 0, false
	}
	data, err := t.node.Fetch(ctx, owner, cluster.FetchRequest{
		Kind:    key.Kind,
		Digest:  key.Digest,
		Suffix:  digestSuffix,
		Quality: key.Quality,
		Device:  key.Device,
		Clip:    t.clip,
	})
	if err != nil {
		decide("fallback_compute")
		sp.SetAttr("error", err.Error())
		return nil, 0, false
	}
	v, cost, err := cod.decode(data)
	if err != nil {
		decide("fallback_compute")
		sp.SetAttr("error", err.Error())
		return nil, 0, false
	}
	decide("peer_fill")
	if t.store != nil {
		// Write through the exact CRC-verified bytes the owner sent:
		// after a membership change the new owner serves future fetches
		// from its disk instead of triggering a recompute herd, and this
		// node survives a restart with the artifact warm.
		psp := obs.StartSpan(ctx, "annstore.put")
		psp.SetAttr("kind", key.Kind)
		if t.store.Put(skey, data) == nil && cod.attachRef != nil {
			if ref, ok := t.store.GetRef(skey); ok {
				cod.attachRef(v, ref)
			}
		}
		psp.End()
	}
	return v, cost, true
}
