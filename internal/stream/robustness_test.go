package stream

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/obs"
)

// tempNetErr is a transient accept failure (what EMFILE or ECONNABORTED
// look like through the net package's Temporary contract).
type tempNetErr struct{}

func (tempNetErr) Error() string   { return "simulated transient accept failure" }
func (tempNetErr) Temporary() bool { return true }
func (tempNetErr) Timeout() bool   { return false }

// scriptListener replays a scripted sequence of Accept outcomes; a
// closed script behaves like a closed listener.
type scriptListener struct {
	events chan func() (net.Conn, error)
}

func (l *scriptListener) Accept() (net.Conn, error) {
	f, ok := <-l.events
	if !ok {
		return nil, net.ErrClosed
	}
	return f()
}
func (l *scriptListener) Close() error   { return nil }
func (l *scriptListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

func TestAcceptBackoffRetriesTemporaryErrors(t *testing.T) {
	ln := &scriptListener{events: make(chan func() (net.Conn, error), 8)}
	for i := 0; i < 3; i++ {
		ln.events <- func() (net.Conn, error) { return nil, tempNetErr{} }
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	ln.events <- func() (net.Conn, error) { return c1, nil }
	close(ln.events)

	reg := obs.NewRegistry()
	acceptErrors := reg.Counter("test_accept_errors_total", "")
	var handled atomic.Int32
	start := time.Now()
	acceptWithBackoff(ln, "test", quiet, acceptErrors, func(conn net.Conn) {
		handled.Add(1)
	})
	elapsed := time.Since(start)

	if got := handled.Load(); got != 1 {
		t.Errorf("handled %d conns, want 1", got)
	}
	if got := acceptErrors.Value(); got != 3 {
		t.Errorf("accept errors = %d, want 3", got)
	}
	// Three retries back off 5ms + 10ms + 20ms before the conn arrives.
	if elapsed < 35*time.Millisecond {
		t.Errorf("loop took %v, want >= 35ms of backoff across 3 transient errors", elapsed)
	}
}

func TestAcceptBackoffStopsOnPermanentError(t *testing.T) {
	ln := &scriptListener{events: make(chan func() (net.Conn, error), 1)}
	ln.events <- func() (net.Conn, error) { return nil, errors.New("permanent failure") }
	// The channel stays open: if the loop wrongly retried, it would block
	// here and the test would time out.
	reg := obs.NewRegistry()
	acceptErrors := reg.Counter("test_accept_errors_total", "")
	done := make(chan struct{})
	go func() {
		acceptWithBackoff(ln, "test", quiet, acceptErrors, func(net.Conn) {
			t.Error("handle called for a failed accept")
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("accept loop did not stop on a permanent error")
	}
	if got := acceptErrors.Value(); got != 1 {
		t.Errorf("accept errors = %d, want 1", got)
	}
}

// flakyListener fails the first N accepts with a transient error, then
// delegates to the real listener.
type flakyListener struct {
	net.Listener
	fails atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails.Add(-1) >= 0 {
		return nil, tempNetErr{}
	}
	return l.Listener.Accept()
}

// TestServerSurvivesTransientAcceptErrors: a listener that throws a few
// transient failures must not kill the accept loop — a client connecting
// afterwards is served normally.
func TestServerSurvivesTransientAcceptErrors(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	ln := newLocalListener(t)
	fl := &flakyListener{Listener: ln}
	fl.fails.Store(3)
	s.Serve(fl)
	t.Cleanup(s.Close)

	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(ln.Addr().String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
	if got := reg.Counter("stream_accept_errors_total", "", obs.L("role", "server")).Value(); got != 3 {
		t.Errorf("stream_accept_errors_total = %d, want 3", got)
	}
}

func TestProxySurvivesTransientAcceptErrors(t *testing.T) {
	_, upstream := startServer(t)
	reg := obs.NewRegistry()
	p := NewProxy(upstream)
	p.SetLogf(quiet)
	p.SetObserver(reg)
	ln := newLocalListener(t)
	fl := &flakyListener{Listener: ln}
	fl.fails.Store(2)
	p.Serve(fl)
	t.Cleanup(p.Close)

	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(ln.Addr().String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
	if got := reg.Counter("stream_accept_errors_total", "", obs.L("role", "proxy")).Value(); got != 2 {
		t.Errorf("stream_accept_errors_total = %d, want 2", got)
	}
}

// bombSource panics when a frame is requested — a stand-in for any bug
// deep in the annotation path of one session.
type bombSource struct{ core.Source }

func (bombSource) Frame(i int) *frame.Frame { panic("bomb: synthetic session panic") }

// TestServerPanicIsolation: a panicking session must not take the
// process (or any other session) down. The panicking client fails, the
// next client gets a bit-identical stream, and the panic is counted.
func TestServerPanicIsolation(t *testing.T) {
	cat := testCatalog()
	cat["bomb"] = bombSource{cat["night"]}
	reg := obs.NewRegistry()
	s := NewServer(cat)
	s.SetLogf(quiet)
	s.SetObserver(reg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	_, wantDigests, wantLevels := playRecorded(t, &Client{Device: display.IPAQ5555()}, addr.String())

	bombClient := &Client{Device: display.IPAQ5555(), Retry: RetryPolicy{MaxAttempts: 1}}
	if _, err := bombClient.Play(addr.String(), "bomb", 0.10); err == nil {
		t.Fatal("playing the panicking clip unexpectedly succeeded")
	}
	if got := reg.Counter("stream_session_panics_total", "", obs.L("role", "server")).Value(); got != 1 {
		t.Errorf("stream_session_panics_total = %d, want 1", got)
	}

	// The server is still alive and serves other sessions bit-identically.
	res, gotDigests, gotLevels := playRecorded(t, &Client{Device: display.IPAQ5555()}, addr.String())
	if res.Frames != 20 {
		t.Fatalf("frames after panic = %d, want 20", res.Frames)
	}
	for i := range wantDigests {
		if gotDigests[i] != wantDigests[i] || gotLevels[i] != wantLevels[i] {
			t.Fatalf("frame %d differs after another session panicked", i)
		}
	}
}

// TestServerAdmissionQueueAdmitsAfterSlotFrees: at capacity with a free
// queue slot, a connection waits instead of being shed — it succeeds
// with zero retries once the slot opens.
func TestServerAdmissionQueueAdmitsAfterSlotFrees(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	s.SetMaxSessions(1)
	s.SetAdmissionQueue(1, 2*time.Second)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	squatter, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	active := reg.Gauge("stream_active_conns", "", obs.L("role", "server"))
	waitFor(t, "squatter to hold the slot", func() bool { return active.Value() >= 1 })

	go func() {
		time.Sleep(150 * time.Millisecond)
		squatter.Close()
	}()
	// MaxAttempts 1: the client has no retry budget, so it can only
	// succeed by riding the admission queue.
	client := &Client{Device: display.IPAQ5555(), Retry: RetryPolicy{MaxAttempts: 1}}
	res, err := client.Play(addr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d, want 0 (admission must come from the queue)", res.Retries)
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
	if got := reg.Counter("stream_sessions_shed_total", "", obs.L("role", "server")).Value(); got != 0 {
		t.Errorf("stream_sessions_shed_total = %d, want 0", got)
	}
}

// TestServerShedsWhenQueueFull: with the slot and the only queue
// position both taken, the next connection is shed immediately.
func TestServerShedsWhenQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	s.SetMaxSessions(1)
	s.SetAdmissionQueue(1, 5*time.Second)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	squatter, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	active := reg.Gauge("stream_active_conns", "", obs.L("role", "server"))
	waitFor(t, "squatter to hold the slot", func() bool { return active.Value() >= 1 })

	waiter, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	depth := reg.Gauge("stream_admission_queue_depth", "", obs.L("role", "server"))
	waitFor(t, "waiter to enter the queue", func() bool { return depth.Value() >= 1 })

	client := &Client{Device: display.IPAQ5555(), Retry: RetryPolicy{MaxAttempts: 1}}
	_, err = client.Play(addr.String(), "night", 0.10)
	if err == nil || !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("err = %v, want an over-capacity refusal with the queue full", err)
	}
	if got := reg.Counter("stream_sessions_shed_total", "", obs.L("role", "server")).Value(); got == 0 {
		t.Error("stream_sessions_shed_total = 0, want nonzero")
	}
}

// TestServerShedsOnQueueWaitDeadline: a queued connection whose slot
// never frees is shed once the wait deadline expires.
func TestServerShedsOnQueueWaitDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	s.SetMaxSessions(1)
	s.SetAdmissionQueue(4, 60*time.Millisecond)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	squatter, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	active := reg.Gauge("stream_active_conns", "", obs.L("role", "server"))
	waitFor(t, "squatter to hold the slot", func() bool { return active.Value() >= 1 })

	start := time.Now()
	client := &Client{Device: display.IPAQ5555(), Retry: RetryPolicy{MaxAttempts: 1}}
	_, err = client.Play(addr.String(), "night", 0.10)
	if err == nil || !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("err = %v, want an over-capacity refusal after the wait deadline", err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("shed after %v, want >= the 60ms queue wait", elapsed)
	}
}

// TestServerShutdownDrainsInFlight: Shutdown lets a mid-stream session
// finish (the client sees every frame) while readiness flips not-ready
// immediately and new connections are refused.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	ln := newLocalListener(t)
	// Throttle the server's writes so the session is genuinely in flight
	// when Shutdown begins.
	s.Serve(faults.WrapListener(ln, faults.Config{Seed: 1, BandwidthBPS: 64 << 10}))
	t.Cleanup(s.Close)
	addr := ln.Addr().String()

	if err := s.Ready(); err != nil {
		t.Fatalf("Ready() = %v before shutdown, want nil", err)
	}

	firstFrame := make(chan struct{})
	var once sync.Once
	client := &Client{Device: display.IPAQ5555()}
	client.OnFrame = func(int, *frame.Frame, int) { once.Do(func() { close(firstFrame) }) }
	type playOut struct {
		res *PlayResult
		err error
	}
	playCh := make(chan playOut, 1)
	go func() {
		res, err := client.Play(addr, "night", 0.10)
		playCh <- playOut{res, err}
	}()
	<-firstFrame

	shutCh := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutCh <- s.Shutdown(ctx) }()

	// Readiness flips immediately, long before the drain completes.
	waitFor(t, "Ready to fail once draining", func() bool { return s.Ready() != nil })
	if got := reg.Gauge("stream_draining", "", obs.L("role", "server")).Value(); got != 1 {
		t.Errorf("stream_draining = %v, want 1", got)
	}

	out := <-playCh
	if out.err != nil {
		t.Fatalf("in-flight session failed during drain: %v", out.err)
	}
	if out.res.Frames != 20 {
		t.Errorf("drained session delivered %d frames, want 20", out.res.Frames)
	}
	if err := <-shutCh; err != nil {
		t.Fatalf("Shutdown = %v, want nil (clean drain)", err)
	}
	// The listener is down: a new session cannot start.
	late := &Client{Device: display.IPAQ5555(), Retry: RetryPolicy{MaxAttempts: 1}}
	if _, err := late.Play(addr, "night", 0.10); err == nil {
		t.Error("a new session started after shutdown")
	}
}

// TestServerShutdownForcesAfterDeadline: a session that will not finish
// is cut when the drain context expires, and Shutdown reports it.
func TestServerShutdownForcesAfterDeadline(t *testing.T) {
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// A connection that never sends its request pins a session in the
	// handshake read (10s default timeout, far beyond the drain budget).
	stuck, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	waitFor(t, "stuck session to register", func() bool {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		return n >= 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("forced shutdown took %v, want well under the handshake timeout", elapsed)
	}
}

// rawStreamSize measures the on-the-wire size of the clip's raw stream
// (calibrates mid-stream reset schedules).
func rawStreamSize(t *testing.T, addr string) int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteRequest(conn, Request{Clip: "night", Device: "measure", Mode: ModeRaw}); err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, conn)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestChaosProxyFailoverBreakerLifecycle is the two-upstream chaos run:
// upstream A resets its first connection mid-stream, so the proxy's
// breaker for A trips open and the fetch fails over to B — the client
// sees a bit-identical stream and zero retries. A recovery probe then
// walks the breaker open -> half-open -> closed, after which fetches use
// A again.
func TestChaosProxyFailoverBreakerLifecycle(t *testing.T) {
	// Upstream B: healthy. Upstream A: first connection reset mid-stream.
	_, upstreamB := startServer(t)
	rawSize := rawStreamSize(t, upstreamB)
	if rawSize/2 < 512 {
		t.Fatalf("raw stream only %d bytes; reset budget would clip the handshake", rawSize)
	}
	srvA := NewServer(testCatalog())
	srvA.SetLogf(quiet)
	lnA := newLocalListener(t)
	srvA.Serve(faults.WrapListener(lnA, faults.Config{Seed: 7, ResetAfter: []int64{rawSize / 2}}))
	t.Cleanup(srvA.Close)
	upstreamA := lnA.Addr().String()

	// Reference stream through a proxy over B alone (the proxy re-encodes,
	// so the reference must come from a proxy, not the server).
	pRef := NewProxy(upstreamB)
	pRef.SetLogf(quiet)
	refAddr, err := pRef.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pRef.Close)
	_, wantDigests, wantLevels := playRecorded(t, &Client{Device: display.IPAQ5555()}, refAddr.String())

	// The proxy under test: A first, B as failover.
	reg := obs.NewRegistry()
	var tmu sync.Mutex
	var transitions []string
	p := NewProxy(upstreamA, upstreamB)
	p.SetLogf(quiet)
	p.SetObserver(reg)
	p.SetBreakerConfig(breaker.Config{
		Window: 10 * time.Second, Buckets: 10,
		FailureRate: 0.5, MinSamples: 1,
		OpenFor: 100 * time.Millisecond, HalfOpenProbes: 1, CloseAfter: 1,
		OnStateChange: func(from, to breaker.State) {
			tmu.Lock()
			transitions = append(transitions, from.String()+"->"+to.String())
			tmu.Unlock()
		},
	})
	p.SetProbeInterval(25 * time.Millisecond)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	sawTransition := func(want string) bool {
		tmu.Lock()
		defer tmu.Unlock()
		for _, tr := range transitions {
			if tr == want {
				return true
			}
		}
		return false
	}

	// Play 1: A dies mid-fetch, the proxy fails over to B. The client
	// must not notice.
	res, gotDigests, gotLevels := playRecorded(t, &Client{Device: display.IPAQ5555()}, addr.String())
	if res.Retries != 0 {
		t.Errorf("client retries = %d, want 0 (failover must be invisible)", res.Retries)
	}
	if len(gotDigests) != len(wantDigests) {
		t.Fatalf("got %d frames, want %d", len(gotDigests), len(wantDigests))
	}
	for i := range wantDigests {
		if gotDigests[i] != wantDigests[i] || gotLevels[i] != wantLevels[i] {
			t.Fatalf("frame %d differs across failover", i)
		}
	}
	if got := reg.Counter("proxy_failovers_total", "", obs.L("role", "proxy")).Value(); got != 1 {
		t.Errorf("proxy_failovers_total = %d, want 1", got)
	}
	if !sawTransition("closed->open") {
		t.Fatalf("transitions = %v, want A's breaker to trip open", transitions)
	}

	// Recovery: the prober takes A's breaker open -> half-open -> closed.
	waitFor(t, "breaker to close after recovery probe", func() bool {
		return sawTransition("open->half-open") && sawTransition("half-open->closed")
	})
	if got := reg.Counter("proxy_upstream_probes_total", "", obs.L("role", "proxy")).Value(); got == 0 {
		t.Error("proxy_upstream_probes_total = 0, want nonzero")
	}
	if got := reg.Gauge("proxy_breaker_state", "",
		obs.L("role", "proxy"), obs.L("upstream", upstreamA)).Value(); got != 0 {
		t.Errorf("proxy_breaker_state{upstream=A} = %v, want 0 (closed)", got)
	}

	// Play 2: A is healthy again and serves without another failover.
	res2, gotDigests2, _ := playRecorded(t, &Client{Device: display.IPAQ5555()}, addr.String())
	if res2.Retries != 0 {
		t.Errorf("post-recovery retries = %d, want 0", res2.Retries)
	}
	for i := range wantDigests {
		if gotDigests2[i] != wantDigests[i] {
			t.Fatalf("frame %d differs after recovery", i)
		}
	}
	if got := reg.Counter("proxy_failovers_total", "", obs.L("role", "proxy")).Value(); got != 1 {
		t.Errorf("proxy_failovers_total = %d after recovery, want still 1 (A serves again)", got)
	}
}

// TestProxyReadyReflectsBreakers: readiness fails while every upstream
// breaker is open and recovers when one closes again.
func TestProxyReadyReflectsBreakers(t *testing.T) {
	p := NewProxy("127.0.0.1:1")
	p.SetLogf(quiet)
	p.SetBreakerConfig(breaker.Config{MinSamples: 1, OpenFor: time.Hour})
	p.SetProbeInterval(0) // no prober; the test drives the breaker by hand
	if err := p.Ready(); err == nil {
		t.Fatal("Ready() = nil before Serve, want not-serving")
	}
	ln := newLocalListener(t)
	p.Serve(ln)
	t.Cleanup(p.Close)
	if err := p.Ready(); err != nil {
		t.Fatalf("Ready() = %v while serving, want nil", err)
	}
	done, ok := p.upstreams[0].br.Allow()
	if !ok {
		t.Fatal("breaker rejected the priming call")
	}
	done(false) // MinSamples 1: trips open
	err := p.Ready()
	if err == nil || !strings.Contains(err.Error(), "breakers open") {
		t.Fatalf("Ready() = %v with the only breaker open, want all-breakers-open", err)
	}
}

// waitFor polls cond until true or fails the test after a few seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
