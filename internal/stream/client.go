package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/annotation"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/display"
	"repro/internal/dvs"
	"repro/internal/frame"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/power"
)

// PlayResult is what a client session produces: decoded playback plus the
// power accounting of the run.
type PlayResult struct {
	Frames      int
	Scenes      int
	Annotated   bool
	AvgLevel    float64
	Switches    int
	BytesStream int
	BytesAnn    int
	// BacklightSavings and TotalSavings are the analytic savings of the
	// session vs full backlight.
	BacklightSavings float64
	TotalSavings     float64
	// DecodedAvgLuma is the mean luminance of decoded frames, a sanity
	// signal that compensation brightened the stream.
	DecodedAvgLuma float64
	Trace, Ref     *power.Trace
	// DecodeCycles holds the stream's per-frame decode-complexity
	// annotations (nil when the server sent none); a DVS-capable client
	// hands them to its frequency governor.
	DecodeCycles []uint32
	// NetScenes holds the per-scene byte-count annotations (nil when
	// absent); a PSM-capable client hands them to its radio scheduler.
	NetScenes []netsched.Scene
	// ServerLevels reports whether the backlight levels came from the
	// server's negotiation-time table rather than the client's own LUT.
	ServerLevels bool
	// Retries counts reconnection attempts after a session failure.
	Retries int
	// Resumes counts reconnections that continued mid-clip via the v2
	// start_frame extension instead of replaying from frame zero.
	Resumes int
	// ProtocolVersion is the request framing the session settled on
	// (4 for adaptive sessions, otherwise 3, stepping down to 2 then 1
	// against older servers).
	ProtocolVersion int
	// QualitySwitches counts the mid-stream rung changes of an adaptive
	// (v4) session, as announced by the server's in-band markers.
	QualitySwitches int
	// FinalRung is the quality rung in force when an adaptive session
	// ended (the requested rung when nothing switched; 0 for fixed
	// sessions).
	FinalRung int
	// RungByFrame records, for an adaptive session, the rung each
	// delivered frame was served at. Nil for fixed-quality sessions.
	RungByFrame []uint8
	// MaxLagSeconds is the deepest playout deficit a real-time player
	// would have suffered during an adaptive session (0 when delivery
	// always kept ahead of the playout clock).
	MaxLagSeconds float64
	// Ledger is the session's power/QoS accounting: per-scene backlight
	// levels, modeled energy vs the full-backlight baseline, wire
	// bytes, rebuffer and degradation events. Its SavedPct agrees with
	// TotalSavings (both integrate the same traces under the same
	// model).
	Ledger *power.Report
	// Degraded lists the side channels the session dropped instead of
	// failing on (e.g. a corrupt annotation track: the backlight simply
	// stays at full). Empty for a healthy session.
	Degraded []string
}

// RetryPolicy shapes the client's reconnect behaviour: exponential
// backoff with jitter, bounded by MaxAttempts connection attempts.
type RetryPolicy struct {
	// MaxAttempts is the total number of connection attempts (first try
	// included). Default 5.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each further retry
	// doubles it. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 2s.
	MaxDelay time.Duration
	// Jitter is the random fraction (0..1) added to each delay so a
	// fleet of clients does not reconnect in lockstep. Default 0.2.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// delay returns the backoff before retry number n (n >= 1).
func (p RetryPolicy) delay(n int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << uint(n-1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d += time.Duration(p.Jitter * rng.Float64() * float64(d))
	}
	return d
}

// countingReader counts bytes received (the stream overhead accounting).
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// Client plays annotated streams on a device profile.
type Client struct {
	Device *display.Profile
	// OnFrame, when set, observes every decoded frame (examples use it).
	// Across a resume, every frame index is observed exactly once.
	OnFrame func(i int, f *frame.Frame, backlight int)
	// Obs, when set, receives the client's online-path telemetry:
	// per-frame decode latency spans, frames/bytes received counters,
	// retry/resume/degradation counters, and the backlight level gauge.
	Obs *obs.Registry
	// Retry shapes reconnect behaviour; the zero value uses defaults
	// (5 attempts, 100ms base, 2s cap, 20% jitter).
	Retry RetryPolicy
	// ReadTimeout is the per-read deadline on the stream connection
	// (default 10s; a stalled link fails fast and triggers a retry).
	ReadTimeout time.Duration
	// DisableResume forces protocol v1 (no start_frame): failures
	// replay the clip from the beginning.
	DisableResume bool
	// Ladder, when set, negotiates an adaptive (v4) session: the client
	// runs the quality-ladder control loop, walking rungs down under
	// playout-buffer pressure or battery drain and back up after
	// recovery (StartRung is derived from the requested quality and may
	// be left zero). Against an older server the client falls back to a
	// fixed v3 session, recording a "ladder" degradation. Ignored when
	// DisableResume forces v1.
	Ladder *adaptive.LadderConfig
	// Dial overrides the dial function (tests inject faulty links).
	Dial func(network, addr string) (net.Conn, error)

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Play connects to addr, negotiates the given clip and quality, and plays
// the stream to completion, returning the session accounting.
func (c *Client) Play(addr, clip string, quality float64) (*PlayResult, error) {
	return c.PlayContext(context.Background(), addr, clip, quality)
}

// errDowngrade signals that the server rejected the current framing and
// the attempt should be repeated one protocol version lower.
var errDowngrade = errors.New("stream: server wants an older protocol")

// PlayContext is Play under a context: cancelling ctx aborts the
// session, including any backoff wait. The session survives transient
// failures by reconnecting with exponential backoff and, when the server
// speaks protocol v2, resuming from the last fully-decoded frame.
func (c *Client) PlayContext(ctx context.Context, addr, clip string, quality float64) (*PlayResult, error) {
	if c.Device == nil {
		return nil, fmt.Errorf("stream: client has no device profile")
	}
	retry := c.Retry.withDefaults()
	s := &session{
		res:     &PlayResult{Trace: &power.Trace{}, Ref: &power.Trace{}, ProtocolVersion: 3},
		level:   display.MaxLevel,
		prev:    -1,
		quality: quality,
		ceilQi:  -1,
		ledger:  power.NewLedger(c.Device),
	}
	switch {
	case c.DisableResume:
		s.res.ProtocolVersion = 1
	case c.Ladder != nil:
		s.adaptive = true
		s.res.ProtocolVersion = 4
	}
	retriesTotal := c.Obs.Counter("stream_client_retries_total",
		"Reconnection attempts after a stream session failure.")
	resumesTotal := c.Obs.Counter("stream_client_resumes_total",
		"Sessions continued mid-clip via the start_frame extension.")
	degradedTotal := c.Obs.Counter("stream_client_degraded_total",
		"Side channels dropped in favour of degraded playback.")

	// The whole playback session is one trace, rooted here; every
	// connection attempt, and (via the v3 header) the proxy and server
	// work on the other side of the wire, hang off this span.
	ctx = obs.WithRegistry(ctx, c.Obs)
	ctx, playSp := obs.StartTrace(ctx, "client.play")
	defer playSp.End()
	playSp.SetAttr("clip", clip)
	playSp.SetAttr("device", c.Device.Name)

	var lastErr error
	for attempt := 0; attempt < retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.res.Retries++
			retriesTotal.Inc()
			d := retry.delay(attempt, c.backoffRNG())
			s.ledger.Rebuffer(d.Seconds())
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		resumed, err := c.attempt(ctx, s, addr, clip)
		if resumed {
			s.res.Resumes++
			resumesTotal.Inc()
		}
		if err == nil {
			return c.finish(s)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, errDowngrade) {
			// Older server: repeat immediately one framing down (4 → 3 →
			// 2 → 1). The downgrade consumes no retry budget — nothing
			// failed, the peers were negotiating.
			switch {
			case s.res.ProtocolVersion >= 4:
				// The server predates the adaptive ladder: play a fixed
				// v3 session at the requested quality instead.
				s.adaptive = false
				s.degrade("ladder", degradedTotal)
				s.res.ProtocolVersion = 3
			case s.res.ProtocolVersion >= 3:
				s.res.ProtocolVersion = 2
			default:
				s.res.ProtocolVersion = 1
			}
			attempt--
			continue
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("stream: giving up after %d attempts: %w", retry.MaxAttempts, lastErr)
}

func (c *Client) backoffRNG() *rand.Rand {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c.rng
}

// retryable classifies a session failure: truncation (short reads,
// resets, timeouts), corruption (container/codec parse failures) and
// over-capacity refusals are worth a reconnect; protocol mismatches and
// definitive server errors (unknown clip) are not.
func retryable(err error) bool {
	switch {
	case errors.Is(err, ErrTruncatedStream),
		errors.Is(err, ErrOverCapacity),
		errors.Is(err, container.ErrFormat),
		errors.Is(err, codec.ErrBitstream):
		return true
	case errors.Is(err, ErrBadMagic):
		return false
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	// Dial failures (refused, unreachable, reset during connect) are
	// transient by nature: the server may be restarting.
	var operr *net.OpError
	return errors.As(err, &operr)
}

// session is the state that survives reconnects: the accumulated result
// plus the playback cursor position (which frame to resume at, current
// backlight level, power traces).
type session struct {
	res     *PlayResult
	quality float64
	// emitted is the number of frames delivered exactly once
	// (== res.Frames); a resume asks the server to start here.
	emitted uint32
	// expected is the clip's total frame count once a header reported
	// it (0 until known). EOF before expected frames is truncation.
	expected uint32
	level    int
	prev     int
	sceneIdx int
	levelSum float64
	lumaSum  float64
	degraded map[string]bool
	// Adaptive-ladder state (protocol v4). adaptive flips off if the
	// server rejects v4. curQi is the rung the server is serving (marker
	// driven); ceilQi the originally requested rung (-1 until the first
	// header); reqRung the rung last asked of the server; primed gates
	// ladder decisions until the playout buffer has once filled to the
	// down-switch threshold, so a fresh stream does not read its own
	// startup as congestion. qualities is the track's quality column,
	// kept so a resume can re-request the rung in force.
	adaptive  bool
	curQi     int
	ceilQi    int
	reqRung   int
	primed    bool
	qualities []float64
	lad       *adaptive.Ladder
	buf       *netsched.Buffer
	// ledger is the session's power/QoS accounting, fed frame by frame
	// alongside the power traces and sealed into PlayResult.Ledger.
	ledger *power.Ledger
}

// degrade records a dropped side channel once.
func (s *session) degrade(what string, total *obs.Counter) {
	if s.degraded == nil {
		s.degraded = map[string]bool{}
	}
	if !s.degraded[what] {
		s.degraded[what] = true
		s.res.Degraded = append(s.res.Degraded, what)
		s.ledger.Degraded(what)
		total.Inc()
	}
}

// attempt runs one connection: negotiate (resuming at s.emitted when the
// session already delivered frames), then decode and account frames.
// resumed reports whether this attempt continued mid-clip via v2.
func (c *Client) attempt(ctx context.Context, s *session, addr, clip string) (resumed bool, err error) {
	ctx, sp := obs.StartSpanCtx(ctx, "client.attempt")
	defer sp.End()
	sp.SetAttr("addr", addr)
	defer func() {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}()
	dial := c.Dial
	if dial == nil {
		dial = net.Dial
	}
	rawConn, err := dial("tcp", addr)
	if err != nil {
		return false, err
	}
	defer rawConn.Close()
	// Cancel the connection (unblocking any pending read) when ctx dies.
	stop := context.AfterFunc(ctx, func() { rawConn.Close() })
	defer stop()

	readTimeout := c.ReadTimeout
	if readTimeout <= 0 {
		readTimeout = 10 * time.Second
	}
	conn := &deadlineConn{Conn: rawConn, readTimeout: readTimeout, writeTimeout: readTimeout}

	req := Request{
		Clip:    clip,
		Quality: s.quality,
		Device:  c.Device.Name,
		Mode:    ModeAnnotated,
		Version: s.res.ProtocolVersion,
	}
	if s.adaptive && req.Version >= 4 {
		req.Adaptive = true
		if s.qualities != nil && s.curQi < len(s.qualities) {
			// Resuming mid-ladder: re-request the rung in force when the
			// connection died. The fresh session's ceiling is that rung —
			// recovery past it waits for the next full session.
			req.Quality = s.qualities[s.curQi]
		}
	}
	if req.Version >= 3 {
		// Hand the attempt span's context across the wire so the
		// proxy/server session joins this trace.
		req.Trace = obs.SpanContextFrom(ctx)
	}
	if req.Version >= 2 {
		req.StartFrame = s.emitted
	} else if s.emitted > 0 {
		// v1 cannot resume: replay the whole clip from scratch.
		s.restart()
	}
	if err := WriteRequest(conn, req); err != nil {
		return false, fmt.Errorf("%w: %v", ErrTruncatedStream, err)
	}
	resumed = req.Version >= 2 && req.StartFrame > 0
	if req.Adaptive {
		return resumed, c.consumeAdaptive(ctx, s, conn, req)
	}
	return resumed, c.consume(ctx, s, conn, req)
}

// restart throws away accumulated playback state (a v1 replay).
func (s *session) restart() {
	s.res.Frames = 0
	s.res.Switches = 0
	s.res.Trace = &power.Trace{}
	s.res.Ref = &power.Trace{}
	s.emitted = 0
	s.level = display.MaxLevel
	s.prev = -1
	s.sceneIdx = 0
	s.levelSum = 0
	s.lumaSum = 0
	s.ledger.Reset()
}

// consume parses the response stream, emitting each clip frame exactly
// once even when the server replays from an earlier I-frame boundary.
func (c *Client) consume(ctx context.Context, s *session, r io.Reader, req Request) error {
	res := s.res
	cr := &countingReader{r: r}
	magic, remoteErr, err := ReadResponseMagic(cr)
	if err != nil {
		if errors.Is(err, ErrBadMagic) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrTruncatedStream, err)
	}
	if remoteErr != nil {
		if req.Version >= 2 && strings.Contains(remoteErr.Error(), "bad request") {
			// An old server cannot parse the v2 magic and answers "bad
			// request": fall back to the v1 framing.
			return errDowngrade
		}
		return remoteErr
	}
	reader, err := container.NewReader(io.MultiReader(&sliceReader{b: magic[:]}, cr))
	if err != nil {
		return classifyStreamErr(err)
	}
	hdr := reader.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		return err
	}

	degradedTotal := c.Obs.Counter("stream_client_degraded_total",
		"Side channels dropped in favour of degraded playback.")

	// Where this connection's stream starts in clip coordinates: the
	// server rounds a resume down to an I-frame boundary and reports it.
	var resumeOffset uint32
	if data, ok := hdr.Extra[container.ChunkResumeOffset]; ok {
		off, err := container.DecodeResumeOffset(data)
		if err != nil {
			return classifyStreamErr(err)
		}
		if off > req.StartFrame {
			return fmt.Errorf("%w: resume offset %d beyond requested frame %d",
				ErrProtocol, off, req.StartFrame)
		}
		resumeOffset = off
	}
	if hdr.FrameCount > 0 {
		s.expected = resumeOffset + uint32(hdr.FrameCount)
	}

	var cursor *annotation.Cursor
	qi := 0
	if hdr.AnnotationsErr != nil {
		// Corrupt annotation track: play the stream at full backlight
		// rather than dying (§3: annotations must never break playback).
		s.degrade("annotations", degradedTotal)
	}
	if hdr.Annotations != nil {
		res.Annotated = true
		res.Scenes = len(hdr.Annotations.Records)
		res.BytesAnn = hdr.Annotations.Size()
		// Each connection resends the track, so the overhead really
		// crossed the wire again on a resume.
		s.ledger.AddAnnotationBytes(int64(res.BytesAnn))
		qi = hdr.Annotations.QualityIndex(s.quality)
		cursor = hdr.Annotations.NewCursor(qi)
	}
	// Device-specific level table from the server's negotiation, if sent
	// (§4.3: levels "can be computed by either the server/proxy ... or by
	// the client itself").
	var serverLevels [][]int
	if data, ok := hdr.Extra[container.ChunkDeviceLevels]; ok {
		levels, err := annotation.DecodeLevels(data)
		if err != nil {
			s.degrade("device_levels", degradedTotal)
		} else if hdr.Annotations != nil && len(levels) == len(hdr.Annotations.Records) {
			serverLevels = levels
			res.ServerLevels = true
		}
	}
	if data, ok := hdr.Extra[container.ChunkDecodeCycles]; ok {
		cycles, err := dvs.DecodeCycles(data)
		if err != nil {
			s.degrade("decode_cycles", degradedTotal)
		} else {
			res.DecodeCycles = cycles
		}
	}
	if data, ok := hdr.Extra[container.ChunkSceneBytes]; ok {
		scenes, err := netsched.DecodeScenes(data)
		if err != nil {
			s.degrade("scene_bytes", degradedTotal)
		} else {
			res.NetScenes = scenes
		}
	}

	framesDecoded := c.Obs.Counter("client_frames_decoded_total",
		"Frames decoded by the playback client.")
	backlightGauge := c.Obs.Gauge("client_backlight_level",
		"Backlight level currently set (0..255).")

	frameSeconds := 1 / float64(hdr.FPS)

	// A resumed connection re-plays the annotation cursor up to the
	// stream's start so scene state (level, serverLevels index) matches
	// what a continuous run would hold at that frame. The replay starts
	// from scene zero because each connection resends the full track.
	s.sceneIdx = 0
	replayLevel := display.MaxLevel
	for g := uint32(0); g < resumeOffset; g++ {
		if cursor == nil {
			break
		}
		target, sceneStart := cursor.Next()
		if sceneStart {
			if serverLevels != nil && s.sceneIdx < len(serverLevels) {
				replayLevel = serverLevels[s.sceneIdx][qi]
			} else {
				replayLevel = c.Device.LevelFor(target)
			}
			s.sceneIdx++
		}
	}
	if resumeOffset > 0 && cursor != nil {
		s.level = replayLevel
	}

	g := resumeOffset // global (clip) frame index of the next decoded frame
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ef, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return classifyStreamErr(err)
		}
		sp := c.Obs.StartSpan("client.decode")
		f, err := dec.Decode(ef)
		sp.End()
		if err != nil {
			return err
		}
		if cursor != nil {
			target, sceneStart := cursor.Next()
			if sceneStart {
				sp := c.Obs.StartSpan("client.backlight_set")
				if serverLevels != nil && s.sceneIdx < len(serverLevels) {
					// Server resolved our device's levels during
					// negotiation: a plain table read.
					s.level = serverLevels[s.sceneIdx][qi]
				} else {
					// The client's whole runtime obligation: one
					// multiply + LUT lookup, then set the backlight.
					s.level = c.Device.LevelFor(target)
				}
				s.sceneIdx++
				sp.End()
				backlightGauge.Set(float64(s.level))
				if g >= s.emitted {
					// Replayed boundaries (I-frame rewind on resume)
					// were already entered in the ledger before the
					// disconnect.
					s.ledger.StartScene(s.sceneIdx-1, s.level)
				}
			}
		}
		if g < s.emitted {
			// Replayed frame (decode warms the predictor state after an
			// I-frame rewind); it was already delivered.
			g++
			continue
		}
		framesDecoded.Inc()
		if s.prev >= 0 && s.level != s.prev {
			res.Switches++
		}
		s.prev = s.level
		s.levelSum += float64(s.level)
		s.lumaSum += f.AvgLuma()

		state := power.State{Decoding: true, NetworkActive: true, BacklightLevel: s.level}
		res.Trace.Append(frameSeconds, state)
		refState := state
		refState.BacklightLevel = display.MaxLevel
		res.Ref.Append(frameSeconds, refState)
		s.ledger.Frame(frameSeconds, s.level)

		if c.OnFrame != nil {
			c.OnFrame(res.Frames, f, s.level)
		}
		res.Frames++
		s.emitted++
		g++
	}
	res.BytesStream += cr.n
	s.ledger.AddWireBytes(int64(cr.n))
	c.Obs.Counter("client_bytes_received_total",
		"Bytes received from the stream connection.").Add(uint64(cr.n))
	if s.expected > 0 && s.emitted < s.expected {
		return fmt.Errorf("%w: got %d of %d frames", ErrTruncatedStream, s.emitted, s.expected)
	}
	return nil
}

// classifyStreamErr folds container/io failures into the typed
// sentinels: truncation for short reads, the original error (which
// wraps container.ErrFormat) for structural damage.
func classifyStreamErr(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %v", ErrTruncatedStream, err)
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("%w: %v", ErrTruncatedStream, err)
	}
	return err
}

// finish seals the accumulated session into the returned result.
func (c *Client) finish(s *session) (*PlayResult, error) {
	res := s.res
	if res.Frames == 0 {
		return nil, fmt.Errorf("stream: empty stream")
	}
	model := power.DefaultModel(c.Device)
	res.AvgLevel = s.levelSum / float64(res.Frames)
	res.DecodedAvgLuma = s.lumaSum / float64(res.Frames)
	res.BacklightSavings = model.BacklightSavings(res.Ref, res.Trace)
	res.TotalSavings = model.Savings(res.Ref, res.Trace)
	if s.adaptive {
		res.FinalRung = s.curQi
		res.MaxLagSeconds = s.buf.MaxLagSeconds()
	}
	rep := s.ledger.Report()
	res.Ledger = &rep
	rep.EmitMetrics(c.Obs, "client")
	return res, nil
}
