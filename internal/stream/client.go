package stream

import (
	"bytes"
	"fmt"
	"io"
	"net"

	"repro/internal/annotation"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/display"
	"repro/internal/dvs"
	"repro/internal/frame"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/power"
)

// PlayResult is what a client session produces: decoded playback plus the
// power accounting of the run.
type PlayResult struct {
	Frames      int
	Scenes      int
	Annotated   bool
	AvgLevel    float64
	Switches    int
	BytesStream int
	BytesAnn    int
	// BacklightSavings and TotalSavings are the analytic savings of the
	// session vs full backlight.
	BacklightSavings float64
	TotalSavings     float64
	// DecodedAvgLuma is the mean luminance of decoded frames, a sanity
	// signal that compensation brightened the stream.
	DecodedAvgLuma float64
	Trace, Ref     *power.Trace
	// DecodeCycles holds the stream's per-frame decode-complexity
	// annotations (nil when the server sent none); a DVS-capable client
	// hands them to its frequency governor.
	DecodeCycles []uint32
	// NetScenes holds the per-scene byte-count annotations (nil when
	// absent); a PSM-capable client hands them to its radio scheduler.
	NetScenes []netsched.Scene
	// ServerLevels reports whether the backlight levels came from the
	// server's negotiation-time table rather than the client's own LUT.
	ServerLevels bool
}

// countingReader counts bytes received (the stream overhead accounting).
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// Client plays annotated streams on a device profile.
type Client struct {
	Device *display.Profile
	// OnFrame, when set, observes every decoded frame (examples use it).
	OnFrame func(i int, f *frame.Frame, backlight int)
	// Obs, when set, receives the client's online-path telemetry:
	// per-frame decode latency spans, frames/bytes received counters,
	// and the current backlight level gauge.
	Obs *obs.Registry
}

// Play connects to addr, negotiates the given clip and quality, and plays
// the stream to completion, returning the session accounting.
func (c *Client) Play(addr, clip string, quality float64) (*PlayResult, error) {
	if c.Device == nil {
		return nil, fmt.Errorf("stream: client has no device profile")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := Request{Clip: clip, Quality: quality, Device: c.Device.Name, Mode: ModeAnnotated}
	if err := WriteRequest(conn, req); err != nil {
		return nil, err
	}
	return c.play(conn, quality)
}

// play consumes a response stream (already-negotiated connection).
func (c *Client) play(r io.Reader, quality float64) (*PlayResult, error) {
	cr := &countingReader{r: r}
	magic, remoteErr, err := ReadResponseMagic(cr)
	if err != nil {
		return nil, err
	}
	if remoteErr != nil {
		return nil, remoteErr
	}
	reader, err := container.NewReader(io.MultiReader(bytes.NewReader(magic[:]), cr))
	if err != nil {
		return nil, err
	}
	hdr := reader.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		return nil, err
	}

	res := &PlayResult{Trace: &power.Trace{}, Ref: &power.Trace{}}
	model := power.DefaultModel(c.Device)
	frameSeconds := 1 / float64(hdr.FPS)

	var cursor *annotation.Cursor
	qi := 0
	if hdr.Annotations != nil {
		res.Annotated = true
		res.Scenes = len(hdr.Annotations.Records)
		res.BytesAnn = hdr.Annotations.Size()
		qi = hdr.Annotations.QualityIndex(quality)
		cursor = hdr.Annotations.NewCursor(qi)
	}
	// Device-specific level table from the server's negotiation, if sent
	// (§4.3: levels "can be computed by either the server/proxy ... or by
	// the client itself").
	var serverLevels [][]int
	if data, ok := hdr.Extra[container.ChunkDeviceLevels]; ok {
		levels, err := annotation.DecodeLevels(data)
		if err != nil {
			return nil, fmt.Errorf("stream: bad device-level table: %w", err)
		}
		if hdr.Annotations != nil && len(levels) == len(hdr.Annotations.Records) {
			serverLevels = levels
			res.ServerLevels = true
		}
	}
	if data, ok := hdr.Extra[container.ChunkDecodeCycles]; ok {
		cycles, err := dvs.DecodeCycles(data)
		if err != nil {
			return nil, fmt.Errorf("stream: bad decode-cycle annotations: %w", err)
		}
		res.DecodeCycles = cycles
	}
	if data, ok := hdr.Extra[container.ChunkSceneBytes]; ok {
		scenes, err := netsched.DecodeScenes(data)
		if err != nil {
			return nil, fmt.Errorf("stream: bad scene-byte annotations: %w", err)
		}
		res.NetScenes = scenes
	}

	framesDecoded := c.Obs.Counter("client_frames_decoded_total",
		"Frames decoded by the playback client.")
	backlightGauge := c.Obs.Gauge("client_backlight_level",
		"Backlight level currently set (0..255).")
	bytesReceived := c.Obs.Counter("client_bytes_received_total",
		"Bytes received from the stream connection.")

	level := display.MaxLevel
	prev := -1
	sceneIdx := 0
	var levelSum, lumaSum float64
	for {
		ef, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		sp := c.Obs.StartSpan("client.decode")
		f, err := dec.Decode(ef)
		sp.End()
		if err != nil {
			return nil, err
		}
		if cursor != nil {
			target, sceneStart := cursor.Next()
			if sceneStart {
				sp := c.Obs.StartSpan("client.backlight_set")
				if serverLevels != nil && sceneIdx < len(serverLevels) {
					// Server resolved our device's levels during
					// negotiation: a plain table read.
					level = serverLevels[sceneIdx][qi]
					sceneIdx++
				} else {
					// The client's whole runtime obligation: one
					// multiply + LUT lookup, then set the backlight.
					level = c.Device.LevelFor(target)
				}
				sp.End()
				backlightGauge.Set(float64(level))
			}
		}
		framesDecoded.Inc()
		if prev >= 0 && level != prev {
			res.Switches++
		}
		prev = level
		levelSum += float64(level)
		lumaSum += f.AvgLuma()

		state := power.State{Decoding: true, NetworkActive: true, BacklightLevel: level}
		res.Trace.Append(frameSeconds, state)
		refState := state
		refState.BacklightLevel = display.MaxLevel
		res.Ref.Append(frameSeconds, refState)

		if c.OnFrame != nil {
			c.OnFrame(res.Frames, f, level)
		}
		res.Frames++
	}
	if res.Frames == 0 {
		return nil, fmt.Errorf("stream: empty stream")
	}
	res.AvgLevel = levelSum / float64(res.Frames)
	res.DecodedAvgLuma = lumaSum / float64(res.Frames)
	res.BytesStream = cr.n
	bytesReceived.Add(uint64(cr.n))
	res.BacklightSavings = model.BacklightSavings(res.Ref, res.Trace)
	res.TotalSavings = model.Savings(res.Ref, res.Trace)
	return res, nil
}
