// Package baseline implements the comparator policies the paper positions
// itself against (§2), all operating on the same per-frame luminance
// statistics so they compare apples to apples with the annotation scheme:
//
//   - Static: backlight pinned at full drive (the do-nothing reference);
//   - OracleFrame: per-frame dynamic luminance scaling with perfect
//     knowledge — the power upper bound, at the cost of per-frame
//     backlight switching (flicker);
//   - History: client-side prediction from past frames only, the
//     alternative the paper argues against ("limited knowledge can have
//     serious consequences on quality degradation if prediction proves
//     wrong", §3);
//   - Smoothed: per-frame scaling through a rate limiter, in the spirit of
//     QABS's smoothing of backlight switching [Cheng et al., LNCS 2005];
//   - Annotated: the paper's technique, expressed as a strategy for
//     head-to-head evaluation.
package baseline

import (
	"math"

	"repro/internal/annotation"
	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/scene"
)

// Strategy maps frame statistics to per-frame backlight levels.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Levels returns one backlight level per frame for playback on dev
	// at the given clipping budget.
	Levels(dev *display.Profile, stats []scene.FrameStats, budget float64) []int
}

// Static keeps the backlight at full drive.
type Static struct{}

// Name implements Strategy.
func (Static) Name() string { return "static" }

// Levels implements Strategy.
func (Static) Levels(_ *display.Profile, stats []scene.FrameStats, _ float64) []int {
	levels := make([]int, len(stats))
	for i := range levels {
		levels[i] = display.MaxLevel
	}
	return levels
}

// OracleFrame sets, for every frame, exactly the level that frame needs —
// an offline upper bound on savings (the paper notes per-frame changes can
// do better "but may introduce some flicker", §4.3).
type OracleFrame struct{}

// Name implements Strategy.
func (OracleFrame) Name() string { return "oracle-frame" }

// Levels implements Strategy.
func (OracleFrame) Levels(dev *display.Profile, stats []scene.FrameStats, budget float64) []int {
	levels := make([]int, len(stats))
	for i, st := range stats {
		target := frameTarget(st, budget)
		levels[i] = dev.LevelFor(target)
	}
	return levels
}

// History predicts each frame's requirement from a trailing window of past
// frames, plus a safety margin. Frame 0 starts at full backlight. It uses
// no future knowledge and no annotations.
type History struct {
	// Window is the number of past frames considered (default 8).
	Window int
	// Margin is added to the predicted luminance target (default 0.05)
	// to absorb upward drift; larger margins waste power, smaller ones
	// cause clipping violations on scene changes.
	Margin float64
}

// Name implements Strategy.
func (History) Name() string { return "history" }

// Levels implements Strategy.
func (h History) Levels(dev *display.Profile, stats []scene.FrameStats, budget float64) []int {
	window := h.Window
	if window <= 0 {
		window = 8
	}
	margin := h.Margin
	if margin == 0 {
		margin = 0.05
	}
	levels := make([]int, len(stats))
	for i := range stats {
		if i == 0 {
			levels[i] = display.MaxLevel
			continue
		}
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		pred := 0.0
		for _, st := range stats[lo:i] {
			if t := frameTarget(st, budget); t > pred {
				pred = t
			}
		}
		levels[i] = dev.LevelFor(math.Min(1, pred+margin))
	}
	return levels
}

// Smoothed applies per-frame scaling through an asymmetric rate limiter:
// the backlight may rise quickly (to protect quality on cuts to bright
// content) but decays slowly, which suppresses flicker.
type Smoothed struct {
	// RiseStep and FallStep bound the per-frame level change (defaults
	// 64 up, 8 down).
	RiseStep, FallStep int
}

// Name implements Strategy.
func (Smoothed) Name() string { return "smoothed" }

// Levels implements Strategy.
func (s Smoothed) Levels(dev *display.Profile, stats []scene.FrameStats, budget float64) []int {
	rise, fall := s.RiseStep, s.FallStep
	if rise <= 0 {
		rise = 64
	}
	if fall <= 0 {
		fall = 8
	}
	levels := make([]int, len(stats))
	cur := display.MaxLevel
	for i, st := range stats {
		want := dev.LevelFor(frameTarget(st, budget))
		switch {
		case want > cur:
			cur = minInt(want, cur+rise)
		case want < cur:
			cur = maxInt(want, cur-fall)
		}
		levels[i] = cur
	}
	return levels
}

// Annotated is the paper's technique as a strategy: offline scene
// detection and per-scene targets.
type Annotated struct {
	// Config holds the scene-detection thresholds; zero value means the
	// paper's defaults at 10 fps.
	Config scene.Config
}

// Name implements Strategy.
func (Annotated) Name() string { return "annotated" }

// Levels implements Strategy.
func (a Annotated) Levels(dev *display.Profile, stats []scene.FrameStats, budget float64) []int {
	cfg := a.Config
	if cfg.MinInterval == 0 && cfg.Threshold == 0 {
		cfg = scene.DefaultConfig(10)
	}
	scenes := scene.Detect(cfg, stats)
	track := annotation.FromStats(10, scenes, stats, []float64{budget})
	levels := make([]int, 0, len(stats))
	cursor := track.NewCursor(0)
	level := display.MaxLevel
	for range stats {
		target, start := cursor.Next()
		if start {
			level = dev.LevelFor(target)
		}
		levels = append(levels, level)
	}
	return levels
}

// frameTarget is the luminance a single frame needs at the given budget.
func frameTarget(st scene.FrameStats, budget float64) float64 {
	if st.Hist != nil && st.Hist.Total > 0 {
		return compensate.SceneTarget(st.Hist, budget)
	}
	return st.MaxLuma / 255
}

// Result aggregates an evaluated strategy run.
type Result struct {
	Strategy string
	// BacklightSavings is the backlight energy saved vs full drive.
	BacklightSavings float64
	// AvgLevel is the mean backlight level.
	AvgLevel float64
	// Switches counts level changes; SwitchesPerSec normalises by time.
	Switches       int
	SwitchesPerSec float64
	// MaxStep is the largest single level jump (flicker severity).
	MaxStep int
	// ViolationRate is the fraction of frames whose realised clipping
	// exceeded the budget by more than violationMargin (material quality
	// violations, the history-prediction failure mode; scene-level
	// budgeting may overshoot by a hair on flickery frames, which is not
	// what this measures).
	ViolationRate float64
	// MeanExcessClip is the average clipping beyond budget on violating
	// frames (0 when there are none).
	MeanExcessClip float64
}

// violationMargin is the clipping excess (absolute fraction of pixels)
// beyond the budget that counts as a material quality violation.
const violationMargin = 0.02

// Evaluate scores a per-frame level sequence against the frame statistics
// it was derived from.
func Evaluate(name string, dev *display.Profile, stats []scene.FrameStats, levels []int, fps int, budget float64) Result {
	if len(levels) != len(stats) || len(stats) == 0 {
		return Result{Strategy: name}
	}
	res := Result{Strategy: name}
	var powerSum, levelSum float64
	violations := 0
	var excess float64
	full := dev.BacklightPower(display.MaxLevel)
	prev := -1
	for i, st := range stats {
		l := levels[i]
		powerSum += dev.BacklightPower(l)
		levelSum += float64(l)
		if prev >= 0 && l != prev {
			res.Switches++
			if step := absInt(l - prev); step > res.MaxStep {
				res.MaxStep = step
			}
		}
		prev = l
		if st.Hist != nil && st.Hist.Total > 0 {
			// Pixels brighter than the displayable ceiling clip.
			ceiling := int(dev.Luminance(l)*255 + 0.5)
			clipped := st.Hist.ClippedFraction(ceiling)
			if clipped > budget+violationMargin {
				violations++
				excess += clipped - budget
			}
		}
	}
	n := float64(len(stats))
	res.BacklightSavings = 1 - powerSum/(full*n)
	res.AvgLevel = levelSum / n
	res.ViolationRate = float64(violations) / n
	if violations > 0 {
		res.MeanExcessClip = excess / float64(violations)
	}
	if fps > 0 {
		res.SwitchesPerSec = float64(res.Switches) / (n / float64(fps))
	}
	return res
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
