package baseline

import (
	"testing"

	"repro/internal/display"
	"repro/internal/scene"
	"repro/internal/video"
)

// clipStats renders a test clip with a dark and a bright scene and returns
// its per-frame statistics.
func clipStats(t *testing.T) ([]scene.FrameStats, int) {
	t.Helper()
	c := video.MustNew("baseline", 32, 24, 10, 21, []video.SceneSpec{
		{Frames: 20, BaseLuma: 0.15, LumaSpread: 0.12, MaxLuma: 0.75, HighlightFrac: 0.01, Flicker: 0.02, Motion: 1},
		{Frames: 20, BaseLuma: 0.55, LumaSpread: 0.15, MaxLuma: 0.98, HighlightFrac: 0.25, Flicker: 0.02, Motion: 1},
		{Frames: 20, BaseLuma: 0.18, LumaSpread: 0.12, MaxLuma: 0.80, HighlightFrac: 0.01, Flicker: 0.02, Motion: 1},
	})
	stats := make([]scene.FrameStats, c.TotalFrames())
	for i := range stats {
		stats[i] = scene.StatsOf(c.Frame(i))
	}
	return stats, c.FPS
}

func TestStaticNeverDims(t *testing.T) {
	stats, fps := clipStats(t)
	dev := display.IPAQ5555()
	levels := Static{}.Levels(dev, stats, 0.1)
	for _, l := range levels {
		if l != display.MaxLevel {
			t.Fatalf("static level = %d", l)
		}
	}
	res := Evaluate("static", dev, stats, levels, fps, 0.1)
	if res.BacklightSavings > 1e-12 || res.BacklightSavings < -1e-12 ||
		res.Switches != 0 || res.ViolationRate != 0 {
		t.Errorf("static result = %+v", res)
	}
}

func TestOracleSavesMostPower(t *testing.T) {
	stats, fps := clipStats(t)
	dev := display.IPAQ5555()
	budget := 0.10
	strategies := []Strategy{OracleFrame{}, History{}, Smoothed{}, Annotated{Config: scene.DefaultConfig(fps)}}
	results := map[string]Result{}
	for _, s := range strategies {
		levels := s.Levels(dev, stats, budget)
		results[s.Name()] = Evaluate(s.Name(), dev, stats, levels, fps, budget)
	}
	// The oracle is the per-frame-budget upper bound. The annotated
	// strategy budgets clipping per scene, so it may edge past the
	// per-frame oracle by a sliver (budget borrowed across frames within
	// a scene); anything beyond a couple of percent is a bug.
	oracle := results["oracle-frame"]
	for name, r := range results {
		if r.BacklightSavings > oracle.BacklightSavings+0.02 {
			t.Errorf("%s saves %v, more than the oracle %v", name, r.BacklightSavings, oracle.BacklightSavings)
		}
	}
}

func TestOracleNeverViolatesBudget(t *testing.T) {
	stats, fps := clipStats(t)
	dev := display.IPAQ5555()
	levels := OracleFrame{}.Levels(dev, stats, 0.10)
	res := Evaluate("oracle", dev, stats, levels, fps, 0.10)
	if res.ViolationRate > 0 {
		t.Errorf("oracle violation rate = %v", res.ViolationRate)
	}
	if res.BacklightSavings <= 0.2 {
		t.Errorf("oracle savings = %v, expected substantial", res.BacklightSavings)
	}
}

func TestAnnotatedNearOracleWithFewSwitches(t *testing.T) {
	stats, fps := clipStats(t)
	dev := display.IPAQ5555()
	budget := 0.10
	oracleLv := OracleFrame{}.Levels(dev, stats, budget)
	annLv := Annotated{Config: scene.DefaultConfig(fps)}.Levels(dev, stats, budget)
	oracle := Evaluate("oracle", dev, stats, oracleLv, fps, budget)
	ann := Evaluate("annotated", dev, stats, annLv, fps, budget)
	if ann.Switches >= oracle.Switches {
		t.Errorf("annotated switches %d not below oracle %d", ann.Switches, oracle.Switches)
	}
	if ann.BacklightSavings < 0.5*oracle.BacklightSavings {
		t.Errorf("annotated savings %v too far below oracle %v",
			ann.BacklightSavings, oracle.BacklightSavings)
	}
	// Scene-level budgeting may clip individual frames slightly past the
	// per-frame budget; the rate must stay small.
	if ann.ViolationRate > 0.15 {
		t.Errorf("annotated violation rate = %v", ann.ViolationRate)
	}
}

func TestHistoryViolatesOnSceneChanges(t *testing.T) {
	stats, fps := clipStats(t)
	dev := display.IPAQ5555()
	budget := 0.0 // lossless request makes violations unambiguous
	histLv := History{}.Levels(dev, stats, budget)
	annLv := Annotated{Config: scene.DefaultConfig(fps)}.Levels(dev, stats, budget)
	hist := Evaluate("history", dev, stats, histLv, fps, budget)
	ann := Evaluate("annotated", dev, stats, annLv, fps, budget)
	if hist.ViolationRate <= ann.ViolationRate {
		t.Errorf("history violations %v not above annotated %v — prediction should fail on cuts",
			hist.ViolationRate, ann.ViolationRate)
	}
	if hist.ViolationRate == 0 {
		t.Error("history never violated; scene cuts should catch it out")
	}
}

func TestSmoothedLimitsStepSize(t *testing.T) {
	stats, fps := clipStats(t)
	dev := display.IPAQ5555()
	s := Smoothed{RiseStep: 40, FallStep: 6}
	levels := s.Levels(dev, stats, 0.10)
	res := Evaluate("smoothed", dev, stats, levels, fps, 0.10)
	if res.MaxStep > 40 {
		t.Errorf("smoothed max step = %d, want <= 40", res.MaxStep)
	}
	oracle := Evaluate("oracle", dev, stats, OracleFrame{}.Levels(dev, stats, 0.10), fps, 0.10)
	if res.MaxStep >= oracle.MaxStep {
		t.Errorf("smoothed max step %d not below oracle %d", res.MaxStep, oracle.MaxStep)
	}
}

func TestHistoryDefaultsApplied(t *testing.T) {
	stats, _ := clipStats(t)
	dev := display.IPAQ5555()
	a := History{}.Levels(dev, stats, 0.1)
	b := History{Window: 8, Margin: 0.05}.Levels(dev, stats, 0.1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("defaults mismatch at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[0] != display.MaxLevel {
		t.Errorf("history first frame level = %d, want full", a[0])
	}
}

func TestEvaluateDegenerateInputs(t *testing.T) {
	dev := display.IPAQ5555()
	if res := Evaluate("x", dev, nil, nil, 10, 0.1); res.Strategy != "x" || res.BacklightSavings != 0 {
		t.Errorf("empty evaluate = %+v", res)
	}
	stats, _ := clipStats(t)
	if res := Evaluate("x", dev, stats, []int{1}, 10, 0.1); res.BacklightSavings != 0 {
		t.Error("length mismatch not treated as empty")
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		Static{}:      "static",
		OracleFrame{}: "oracle-frame",
		History{}:     "history",
		Smoothed{}:    "smoothed",
		Annotated{}:   "annotated",
	}
	for s, name := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}
