// Package cluster turns a set of streamd nodes into a clip-sharded
// serving fleet. Rendezvous (highest-random-weight) hashing over the
// configured member list assigns each artifact key to exactly one
// shard owner; a non-owner that misses its local cache and store fills
// from the owner over a small fetch-artifact RPC (the AFR1 framing in
// afr.go) instead of recomputing, so each artifact is computed once
// fleet-wide. Membership is churn-tolerant by construction: rendezvous
// hashing moves only the keys owned by a departed node, per-peer
// circuit breakers route around unhealthy owners, and every fill
// falls back to local compute — a cluster of one degraded node still
// serves every request the single-node system could.
package cluster

import (
	"hash/fnv"
	"sort"
)

// RouteKey is the sharding key: artifact kind plus content digest.
// Quality and device are deliberately excluded — all variants of one
// clip land on the same owner, so a ladder walk hits one peer's warm
// cache instead of scattering across the fleet.
func RouteKey(kind, digest string) string {
	return kind + "\x00" + digest
}

// score is the rendezvous weight of (member, key): a 64-bit FNV-1a
// over the member address and the key, scrambled through a 64-bit
// finalizer. The finalizer matters: raw FNV-1a of prefix||suffix moves
// almost linearly with short suffix changes, so without it the member
// prefix dominates the magnitude and one member wins every key. Every
// node computes the same scores from the same member list, so routing
// needs no coordination.
func score(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member with the highest rendezvous score for key.
// Ties break toward the lexically smaller address so every node agrees.
// An empty member list returns "".
func Owner(members []string, key string) string {
	best := ""
	var bestScore uint64
	for _, m := range members {
		s := score(m, key)
		if best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// RankedOwners returns the members ordered by descending rendezvous
// score for key: the head is the owner, the tail the failover order a
// caller walks when the owner's breaker is open. The input slice is
// not modified.
func RankedOwners(members []string, key string) []string {
	type cand struct {
		addr string
		s    uint64
	}
	cands := make([]cand, 0, len(members))
	for _, m := range members {
		cands = append(cands, cand{m, score(m, key)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].addr < cands[j].addr
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.addr
	}
	return out
}
