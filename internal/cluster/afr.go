package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The fetch-artifact RPC rides the same listener as client sessions:
// a node reads the 4-byte magic and dispatches AFR1 frames here, RQS*
// frames to the session handler. The framing is versioned (the magic
// carries the version digit) and every variable-length field is
// length-prefixed with a hard bound, so a hostile or desynchronised
// peer can make a fetch fail but never make the server allocate
// unbounded memory or misparse. The response payload carries a
// CRC32-Castagnoli trailer: a requester that sees a mismatch discards
// the bytes and recomputes locally — wrong bytes are never served.

// FetchMagic opens a fetch-artifact request frame (version 1).
var FetchMagic = [4]byte{'A', 'F', 'R', '1'}

// fetchOKMagic and fetchErrMagic open the two response frames.
var (
	fetchOKMagic  = [4]byte{'A', 'F', 'O', '1'}
	fetchErrMagic = [4]byte{'A', 'F', 'E', '1'}
)

// Field bounds. Digests are hex fingerprints plus an encoder-config
// suffix, kinds are short identifiers; anything larger is hostile.
const (
	maxKindLen   = 64
	maxDigestLen = 512
	maxSuffixLen = 128

	// DefaultMaxArtifactBytes bounds an accepted response payload: one
	// encoded variant of a clip, with generous headroom.
	DefaultMaxArtifactBytes = 1 << 30
)

// crcTable is the Castagnoli polynomial table shared by writer and
// reader (hardware-accelerated on the platforms that matter).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Framing and outcome sentinels.
var (
	// ErrFraming reports a malformed fetch frame (bad magic, hostile
	// length, truncation). The connection is poisoned: the caller must
	// drop it, not retry on it.
	ErrFraming = errors.New("cluster: fetch framing error")
	// ErrChecksum reports a response payload whose CRC trailer did not
	// match. The requester must discard the payload and fall back to
	// local compute.
	ErrChecksum = errors.New("cluster: artifact checksum mismatch")
	// ErrNotFound is the owner's clean miss: it does not have and
	// cannot produce the artifact (unknown clip, encoder mismatch).
	ErrNotFound = errors.New("cluster: artifact not found on owner")
	// ErrPeerUnavailable reports that the peer could not be used at all
	// (breaker open, dial failure, draining).
	ErrPeerUnavailable = errors.New("cluster: peer unavailable")
)

// Remote error codes carried by an AFE1 frame.
const (
	// CodeNotFound: the owner answered cleanly but does not have and
	// cannot produce the artifact (unknown digest, encoder mismatch).
	CodeNotFound uint8 = 1
	// CodeUnavailable: the owner could not resolve right now (draining,
	// upstream down); the requester computes locally.
	CodeUnavailable uint8 = 2
)

// FetchRequest names one artifact. Kind/Digest/Quality/Device mirror
// the anncache key space; Suffix is the disk tier's digest suffix
// (encoder-config signature for variants, empty otherwise), sent
// separately so the owner can verify its own encoder settings match
// rather than serving bits encoded under different parameters. Clip is
// the requester's clip-name hint: content digests are one-way, so the
// hint is how an owner that has not yet computed anything maps the
// digest back to a catalog entry (it always verifies the digest before
// trusting the name).
type FetchRequest struct {
	Kind    string
	Digest  string
	Suffix  string
	Quality int
	Device  string
	Clip    string
}

// WriteFetchRequest frames req onto w, magic included.
func WriteFetchRequest(w io.Writer, req FetchRequest) error {
	if len(req.Kind) == 0 || len(req.Kind) > maxKindLen {
		return fmt.Errorf("%w: kind length %d", ErrFraming, len(req.Kind))
	}
	if len(req.Digest) == 0 || len(req.Digest) > maxDigestLen {
		return fmt.Errorf("%w: digest length %d", ErrFraming, len(req.Digest))
	}
	if len(req.Suffix) > maxSuffixLen {
		return fmt.Errorf("%w: suffix length %d", ErrFraming, len(req.Suffix))
	}
	if len(req.Device) > 255 || len(req.Clip) > 255 {
		return fmt.Errorf("%w: name too long", ErrFraming)
	}
	if req.Quality < -1 || req.Quality > 0xFFFE {
		return fmt.Errorf("%w: quality %d not encodable", ErrFraming, req.Quality)
	}
	buf := append([]byte{}, FetchMagic[:]...)
	buf = append(buf, uint8(len(req.Kind)))
	buf = append(buf, req.Kind...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Digest)))
	buf = append(buf, req.Digest...)
	buf = append(buf, uint8(len(req.Suffix)))
	buf = append(buf, req.Suffix...)
	// Quality is shifted by one so the conventional -1 ("whole clip")
	// rides an unsigned field.
	buf = binary.BigEndian.AppendUint16(buf, uint16(req.Quality+1))
	buf = append(buf, uint8(len(req.Device)))
	buf = append(buf, req.Device...)
	buf = append(buf, uint8(len(req.Clip)))
	buf = append(buf, req.Clip...)
	_, err := w.Write(buf)
	return err
}

// ReadFetchRequest parses a whole request frame, magic included.
func ReadFetchRequest(r io.Reader) (FetchRequest, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return FetchRequest{}, fmt.Errorf("%w: short magic: %v", ErrFraming, err)
	}
	if magic != FetchMagic {
		return FetchRequest{}, fmt.Errorf("%w: bad magic %q", ErrFraming, magic[:])
	}
	return ReadFetchRequestBody(r)
}

// ReadFetchRequestBody parses a request whose magic has already been
// consumed (the dispatch path in the stream listener).
func ReadFetchRequestBody(r io.Reader) (FetchRequest, error) {
	readStr := func(n int, what string) (string, error) {
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", fmt.Errorf("%w: short %s: %v", ErrFraming, what, err)
		}
		return string(b), nil
	}
	var req FetchRequest
	var b1 [1]byte
	var b2 [2]byte
	if _, err := io.ReadFull(r, b1[:]); err != nil {
		return req, fmt.Errorf("%w: short kind length: %v", ErrFraming, err)
	}
	if b1[0] == 0 || int(b1[0]) > maxKindLen {
		return req, fmt.Errorf("%w: kind length %d", ErrFraming, b1[0])
	}
	var err error
	if req.Kind, err = readStr(int(b1[0]), "kind"); err != nil {
		return req, err
	}
	if _, err := io.ReadFull(r, b2[:]); err != nil {
		return req, fmt.Errorf("%w: short digest length: %v", ErrFraming, err)
	}
	if n := binary.BigEndian.Uint16(b2[:]); n == 0 || int(n) > maxDigestLen {
		return req, fmt.Errorf("%w: digest length %d", ErrFraming, n)
	} else if req.Digest, err = readStr(int(n), "digest"); err != nil {
		return req, err
	}
	if _, err := io.ReadFull(r, b1[:]); err != nil {
		return req, fmt.Errorf("%w: short suffix length: %v", ErrFraming, err)
	}
	if int(b1[0]) > maxSuffixLen {
		return req, fmt.Errorf("%w: suffix length %d", ErrFraming, b1[0])
	}
	if req.Suffix, err = readStr(int(b1[0]), "suffix"); err != nil {
		return req, err
	}
	if _, err := io.ReadFull(r, b2[:]); err != nil {
		return req, fmt.Errorf("%w: short quality: %v", ErrFraming, err)
	}
	req.Quality = int(binary.BigEndian.Uint16(b2[:])) - 1
	if _, err := io.ReadFull(r, b1[:]); err != nil {
		return req, fmt.Errorf("%w: short device length: %v", ErrFraming, err)
	}
	if req.Device, err = readStr(int(b1[0]), "device"); err != nil {
		return req, err
	}
	if _, err := io.ReadFull(r, b1[:]); err != nil {
		return req, fmt.Errorf("%w: short clip length: %v", ErrFraming, err)
	}
	if req.Clip, err = readStr(int(b1[0]), "clip"); err != nil {
		return req, err
	}
	return req, nil
}

// WriteFetchResponse frames a successful payload with its CRC trailer.
func WriteFetchResponse(w io.Writer, payload []byte) error {
	hdr := append([]byte{}, fetchOKMagic[:]...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(tail[:])
	return err
}

// WriteFetchError frames a clean remote failure.
func WriteFetchError(w io.Writer, code uint8, msg string) error {
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	buf := append([]byte{}, fetchErrMagic[:]...)
	buf = append(buf, code)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	return err
}

// ReadFetchResponse parses the owner's answer. maxBytes (<= 0 selects
// DefaultMaxArtifactBytes) bounds the accepted payload against hostile
// length fields. A clean remote miss maps to ErrNotFound, a CRC
// mismatch to ErrChecksum; both tell the requester to compute locally.
func ReadFetchResponse(r io.Reader, maxBytes int64) ([]byte, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxArtifactBytes
	}
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short response magic: %v", ErrFraming, err)
	}
	switch magic {
	case fetchErrMagic:
		var hdr [3]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: short error frame: %v", ErrFraming, err)
		}
		msg := make([]byte, binary.BigEndian.Uint16(hdr[1:]))
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, fmt.Errorf("%w: short error message: %v", ErrFraming, err)
		}
		if hdr[0] == CodeNotFound {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, msg)
		}
		return nil, fmt.Errorf("%w: remote: %s", ErrPeerUnavailable, msg)
	case fetchOKMagic:
		var lb [4]byte
		if _, err := io.ReadFull(r, lb[:]); err != nil {
			return nil, fmt.Errorf("%w: short payload length: %v", ErrFraming, err)
		}
		n := int64(binary.BigEndian.Uint32(lb[:]))
		if n > maxBytes {
			return nil, fmt.Errorf("%w: payload length %d over budget %d", ErrFraming, n, maxBytes)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: short payload: %v", ErrFraming, err)
		}
		var tail [4]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return nil, fmt.Errorf("%w: short checksum: %v", ErrFraming, err)
		}
		if binary.BigEndian.Uint32(tail[:]) != crc32.Checksum(payload, crcTable) {
			return nil, ErrChecksum
		}
		return payload, nil
	default:
		return nil, fmt.Errorf("%w: bad response magic %q", ErrFraming, magic[:])
	}
}
