package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/breaker"
)

func TestRouteKeyExcludesVariantAxes(t *testing.T) {
	// Every quality rung and device table of one clip must share an
	// owner, so the route key is (kind, digest) only.
	if RouteKey("variant", "abc") == RouteKey("track", "abc") {
		t.Fatal("kind must partition the key space")
	}
	if RouteKey("variant", "abc") != RouteKey("variant", "abc") {
		t.Fatal("route key must be deterministic")
	}
}

func TestOwnerDeterministicAcrossOrderings(t *testing.T) {
	members := []string{"10.0.0.1:7400", "10.0.0.2:7400", "10.0.0.3:7400"}
	shuffled := []string{"10.0.0.3:7400", "10.0.0.1:7400", "10.0.0.2:7400"}
	for i := 0; i < 100; i++ {
		key := RouteKey("variant", fmt.Sprintf("digest-%d", i))
		a := Owner(members, key)
		b := Owner(shuffled, key)
		if a != b {
			t.Fatalf("key %q: owner depends on member order (%s vs %s)", key, a, b)
		}
	}
	if Owner(nil, "k") != "" {
		t.Fatal("empty member list must yield no owner")
	}
}

func TestOwnerDistribution(t *testing.T) {
	members := []string{"10.0.0.1:7400", "10.0.0.2:7400", "10.0.0.3:7400"}
	counts := map[string]int{}
	const n = 600
	for i := 0; i < n; i++ {
		counts[Owner(members, RouteKey("track", fmt.Sprintf("d%04x", i)))]++
	}
	for _, m := range members {
		if counts[m] < n/10 {
			t.Fatalf("member %s owns only %d of %d keys — hash is badly skewed: %v", m, counts[m], n, counts)
		}
	}
}

func TestRendezvousMinimalReshuffle(t *testing.T) {
	// The property that makes churn cheap: removing one member must only
	// remap the keys that member owned; everyone else's keys stay put.
	members := []string{"10.0.0.1:7400", "10.0.0.2:7400", "10.0.0.3:7400"}
	gone := members[1]
	rest := []string{members[0], members[2]}
	for i := 0; i < 400; i++ {
		key := RouteKey("variant", fmt.Sprintf("clip-%d", i))
		before := Owner(members, key)
		after := Owner(rest, key)
		if before != gone && before != after {
			t.Fatalf("key %q moved %s -> %s though %s left", key, before, after, gone)
		}
	}
}

func TestRankedOwnersIsFailoverOrder(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	key := RouteKey("track", "somedigest")
	ranked := RankedOwners(members, key)
	if len(ranked) != len(members) {
		t.Fatalf("ranked %d members, want %d", len(ranked), len(members))
	}
	if ranked[0] != Owner(members, key) {
		t.Fatalf("ranked[0]=%s but Owner=%s", ranked[0], Owner(members, key))
	}
	// Dropping the leader promotes exactly the second-ranked member.
	var rest []string
	for _, m := range members {
		if m != ranked[0] {
			rest = append(rest, m)
		}
	}
	if got := Owner(rest, key); got != ranked[1] {
		t.Fatalf("after leader loss owner=%s, want ranked[1]=%s", got, ranked[1])
	}
}

func TestValidateMembers(t *testing.T) {
	cases := []struct {
		name    string
		self    string
		addrs   []string
		wantErr string
		wantLen int
	}{
		{"clean", "127.0.0.1:7400", []string{"127.0.0.1:7401", "127.0.0.1:7402"}, "", 2},
		{"blank entries dropped", "127.0.0.1:7400", []string{" ", "127.0.0.1:7401", ""}, "", 1},
		{"duplicate", "127.0.0.1:7400", []string{"127.0.0.1:7401", "127.0.0.1:7401"}, "duplicate", 0},
		{"duplicate via localhost alias", "127.0.0.1:7400", []string{"localhost:7401", "127.0.0.1:7401"}, "duplicate", 0},
		{"self", "127.0.0.1:7400", []string{"127.0.0.1:7400"}, "own listen address", 0},
		{"self via localhost alias", "localhost:7400", []string{"127.0.0.1:7400"}, "own listen address", 0},
		{"self via wildcard listen", ":7400", []string{"127.0.0.1:7400"}, "own listen address", 0},
		{"not host:port", "127.0.0.1:7400", []string{"not-an-address"}, "not host:port", 0},
		{"same host different port ok", "127.0.0.1:7400", []string{"127.0.0.1:7401"}, "", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := ValidateMembers(tc.self, tc.addrs)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(out) != tc.wantLen {
					t.Fatalf("got %d addresses %v, want %d", len(out), out, tc.wantLen)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewRevalidates(t *testing.T) {
	if _, err := New(Config{Self: "127.0.0.1:1", Peers: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("New accepted self as a peer")
	}
	if _, err := New(Config{Peers: []string{"127.0.0.1:2"}}); err == nil {
		t.Fatal("New accepted empty self")
	}
}

func TestFetchRequestRoundTrip(t *testing.T) {
	want := FetchRequest{
		Kind: "variant", Digest: "deadbeef", Suffix: "+g10q3",
		Quality: 2, Device: "oled-phone", Clip: "sunset",
	}
	var buf bytes.Buffer
	if err := WriteFetchRequest(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFetchRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch: %+v != %+v", got, want)
	}
	// Quality -1 (whole clip) must survive the unsigned encoding.
	want.Quality = -1
	buf.Reset()
	if err := WriteFetchRequest(&buf, want); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadFetchRequest(&buf); err != nil || got.Quality != -1 {
		t.Fatalf("quality -1 round trip: %+v, %v", got, err)
	}
}

func TestFetchResponseRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 1000)
	var buf bytes.Buffer
	if err := WriteFetchResponse(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFetchResponse(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestFetchResponseChecksumMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFetchResponse(&buf, []byte("artifact bytes")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[10] ^= 0xFF // flip a payload bit; the CRC trailer no longer matches
	if _, err := ReadFetchResponse(bytes.NewReader(b), 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload read as %v, want ErrChecksum", err)
	}
}

func TestFetchResponseHostileLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fetchOKMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB claimed
	if _, err := ReadFetchResponse(&buf, 1<<20); !errors.Is(err, ErrFraming) {
		t.Fatalf("hostile length read as %v, want ErrFraming", err)
	}
}

func TestFetchErrorMapping(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFetchError(&buf, CodeNotFound, "no such digest"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFetchResponse(&buf, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("CodeNotFound read as %v, want ErrNotFound", err)
	}
	buf.Reset()
	if err := WriteFetchError(&buf, CodeUnavailable, "draining"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFetchResponse(&buf, 0); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("CodeUnavailable read as %v, want ErrPeerUnavailable", err)
	}
}

// fetchServer runs a minimal AFR peer: handle is invoked per accepted
// connection with the parsed request.
func fetchServer(t *testing.T, handle func(conn net.Conn, req FetchRequest)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				req, err := ReadFetchRequest(conn)
				if err != nil {
					return
				}
				handle(conn, req)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestNodeFetchAgainstLivePeer(t *testing.T) {
	artifact := []byte("the encoded artifact")
	peer := fetchServer(t, func(conn net.Conn, req FetchRequest) {
		if req.Kind != "track" || req.Digest != "dg1" || req.Clip != "sunset" {
			WriteFetchError(conn, CodeNotFound, "wrong request")
			return
		}
		WriteFetchResponse(conn, artifact)
	})
	n, err := New(Config{Self: "127.0.0.1:1", Peers: []string{peer}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Fetch(context.Background(), peer,
		FetchRequest{Kind: "track", Digest: "dg1", Quality: -1, Clip: "sunset"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, artifact) {
		t.Fatal("fetched bytes differ")
	}
	if _, err := n.Fetch(context.Background(), "10.255.255.1:9", FetchRequest{Kind: "t", Digest: "d"}); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("non-member fetch: %v, want ErrPeerUnavailable", err)
	}
}

func TestNodeNotFoundKeepsBreakerClosed(t *testing.T) {
	peer := fetchServer(t, func(conn net.Conn, req FetchRequest) {
		WriteFetchError(conn, CodeNotFound, "cold owner")
	})
	n, err := New(Config{Self: "127.0.0.1:1", Peers: []string{peer}})
	if err != nil {
		t.Fatal(err)
	}
	// Repeated clean misses are a healthy peer answering correctly —
	// the breaker must stay closed or every cold start would shun the
	// owner exactly when lazy fills matter most.
	for i := 0; i < 10; i++ {
		if _, err := n.Fetch(context.Background(), peer, FetchRequest{Kind: "t", Digest: "d"}); !errors.Is(err, ErrNotFound) {
			t.Fatalf("fetch %d: %v, want ErrNotFound", i, err)
		}
	}
	if st := n.peers[0].br.State(); st != breaker.Closed {
		t.Fatalf("breaker %v after clean misses, want Closed", st)
	}
}

func TestNodeOwnerSkipsOpenBreaker(t *testing.T) {
	// Three members; self plus two dead peers. Driving one peer's
	// breaker open must reroute its shard to the next-ranked member.
	dead1, dead2 := "127.0.0.1:7491", "127.0.0.1:7492"
	n, err := New(Config{
		Self:  "127.0.0.1:7490",
		Peers: []string{dead1, dead2},
		Breaker: breaker.Config{
			Window: time.Second, Buckets: 4, FailureRate: 0.5,
			MinSamples: 2, OpenFor: time.Minute, HalfOpenProbes: 1, CloseAfter: 1,
		},
		Dial: func(network, addr string) (net.Conn, error) {
			return nil, errors.New("injected dial failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a digest whose true owner is dead1.
	var digest string
	for i := 0; ; i++ {
		digest = fmt.Sprintf("d%03d", i)
		if addr, self := n.Owner("track", digest); !self && addr == dead1 {
			break
		}
	}
	for i := 0; i < 4; i++ {
		n.Fetch(context.Background(), dead1, FetchRequest{Kind: "track", Digest: digest})
	}
	if st := n.peers[0].br.State(); st != breaker.Open {
		t.Fatalf("breaker %v after dial failures, want Open", st)
	}
	addr, self := n.Owner("track", digest)
	if addr == dead1 {
		t.Fatal("owner still routes to a peer with an open breaker")
	}
	// The stand-in must be the next member in rendezvous rank order.
	ranked := RankedOwners(n.Members(), RouteKey("track", digest))
	want := ranked[1]
	if addr != want || (self != (want == n.SelfAddr())) {
		t.Fatalf("stand-in owner %s (self=%v), want %s", addr, self, want)
	}
}

func TestNodeStartStopLifecycle(t *testing.T) {
	var mu sync.Mutex
	dials := 0
	peer := "127.0.0.1:7493"
	n, err := New(Config{
		Self:       "127.0.0.1:7490",
		Peers:      []string{peer},
		ProbeEvery: 5 * time.Millisecond,
		Breaker: breaker.Config{
			Window: time.Second, Buckets: 4, FailureRate: 0.5,
			MinSamples: 1, OpenFor: 10 * time.Millisecond, HalfOpenProbes: 1, CloseAfter: 1,
		},
		Dial: func(network, addr string) (net.Conn, error) {
			mu.Lock()
			dials++
			mu.Unlock()
			return nil, errors.New("down")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Stop() // Stop before Start must be a no-op
	// Trip the breaker so the prober has something to probe.
	n.Fetch(context.Background(), peer, FetchRequest{Kind: "t", Digest: "d"})
	n.Start()
	n.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		d := dials
		mu.Unlock()
		if d >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober made %d dials, want >= 3", d)
		}
		time.Sleep(2 * time.Millisecond)
	}
	n.Stop()
	n.Stop() // idempotent
	mu.Lock()
	after := dials
	mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	final := dials
	mu.Unlock()
	if final != after {
		t.Fatalf("prober kept dialing after Stop (%d -> %d)", after, final)
	}
}
