package cluster

import (
	"bytes"
	"errors"
	"testing"
)

// The AFR1 framing faces other cluster nodes, which after a partition
// or version skew can present arbitrarily desynchronised bytes. The
// fuzzers hold the two parser invariants the cluster's safety rests on:
// a hostile frame can fail a fetch but never panic, over-allocate, or —
// for responses — hand back bytes whose checksum was not verified.

func FuzzReadFetchRequest(f *testing.F) {
	seed := func(req FetchRequest) {
		var buf bytes.Buffer
		if WriteFetchRequest(&buf, req) == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(FetchRequest{Kind: "track", Digest: "deadbeef", Quality: -1, Clip: "sunset"})
	seed(FetchRequest{Kind: "variant", Digest: "deadbeef", Suffix: "+g10q3", Quality: 3, Device: "oled", Clip: "x"})
	seed(FetchRequest{Kind: "levels", Digest: "d", Device: "phone"})
	f.Add([]byte("AFR1"))                      // magic only
	f.Add([]byte("AFR1\x05trac"))              // truncated kind
	f.Add([]byte("AFR1\xfftrack"))             // kind length over bound
	f.Add([]byte("AFR1\x01k\xff\xffd"))        // digest length over bound
	f.Add([]byte("RQS1\x80\x00\x03abc"))       // a client request, not a fetch
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadFetchRequest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFraming) {
				t.Fatalf("non-framing parse error: %v", err)
			}
			return
		}
		// Parsed fields must respect the documented bounds — a frame
		// that slips past them could make the owner allocate unbounded.
		if len(req.Kind) == 0 || len(req.Kind) > maxKindLen ||
			len(req.Digest) == 0 || len(req.Digest) > maxDigestLen ||
			len(req.Suffix) > maxSuffixLen ||
			len(req.Device) > 255 || len(req.Clip) > 255 ||
			req.Quality < -1 || req.Quality > 0xFFFE {
			t.Fatalf("parsed request violates bounds: %+v", req)
		}
		// Round trip: what parses must re-encode to bytes that parse to
		// the same request (the two nodes agree on the wire form).
		var buf bytes.Buffer
		if err := WriteFetchRequest(&buf, req); err != nil {
			t.Fatalf("parsed request does not re-encode: %v", err)
		}
		again, err := ReadFetchRequest(&buf)
		if err != nil {
			t.Fatalf("re-encoded request does not parse: %v", err)
		}
		if again != req {
			t.Fatalf("round trip drift: %+v != %+v", again, req)
		}
	})
}

func FuzzReadFetchResponse(f *testing.F) {
	okFrame := func(payload []byte) []byte {
		var buf bytes.Buffer
		WriteFetchResponse(&buf, payload)
		return buf.Bytes()
	}
	f.Add(okFrame([]byte("artifact")))
	f.Add(okFrame(nil))
	corrupt := okFrame([]byte("artifact bytes"))
	corrupt[8] ^= 0x01 // payload bit flip: checksum must catch it
	f.Add(corrupt)
	var errBuf bytes.Buffer
	WriteFetchError(&errBuf, CodeNotFound, "cold owner")
	f.Add(errBuf.Bytes())
	errBuf.Reset()
	WriteFetchError(&errBuf, CodeUnavailable, "draining")
	f.Add(errBuf.Bytes())
	f.Add([]byte("AFO1\xff\xff\xff\xff"))       // hostile length
	f.Add([]byte("AFO1\x00\x00\x00\x04ab"))     // truncated payload
	f.Add([]byte("AFE1\x01\x00\x05no"))         // truncated error message
	f.Add([]byte("ERR1\x00\x03bad"))            // wrong protocol family
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBytes = 1 << 20
		payload, err := ReadFetchResponse(bytes.NewReader(data), maxBytes)
		if err != nil {
			// Every failure is one of the typed sentinels the fill path
			// branches on; an untyped error would dodge the breaker and
			// metrics bucketing.
			if !errors.Is(err, ErrFraming) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrPeerUnavailable) {
				t.Fatalf("untyped response error: %v", err)
			}
			return
		}
		if int64(len(payload)) > maxBytes {
			t.Fatalf("payload %d exceeds the %d budget", len(payload), maxBytes)
		}
		// An accepted payload is exactly one the writer would frame: the
		// checksum verified, so re-encoding reproduces the consumed
		// prefix byte for byte (no wrong-bytes acceptance).
		var buf bytes.Buffer
		if err := WriteFetchResponse(&buf, payload); err != nil {
			t.Fatalf("accepted payload does not re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("accepted frame is not the writer's encoding")
		}
	})
}
