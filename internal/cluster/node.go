package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/breaker"
	"repro/internal/obs"
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is the address peers reach this node at; it participates in
	// routing like any other member but is never dialed.
	Self string
	// Peers are the other members' addresses (validated: no duplicates,
	// never Self).
	Peers []string
	// Breaker tunes the per-peer circuit breakers; the zero value gets
	// the same defaults the proxy's upstream breakers use.
	Breaker breaker.Config
	// DialTimeout bounds connecting to a peer; FetchTimeout bounds one
	// whole fetch RPC (write request + read response).
	DialTimeout  time.Duration
	FetchTimeout time.Duration
	// ProbeEvery is how often unhealthy peers are dial-probed for
	// recovery once Start is called (0 disables probing).
	ProbeEvery time.Duration
	// MaxArtifactBytes bounds an accepted fetch payload (<= 0 selects
	// DefaultMaxArtifactBytes).
	MaxArtifactBytes int64
	// Dial overrides the dial function (tests inject faulty links).
	Dial func(network, addr string) (net.Conn, error)
	// Logf, when set, receives membership and breaker events.
	Logf func(format string, args ...any)
}

// peerNode is one remote member with its health breaker.
type peerNode struct {
	addr string
	br   *breaker.Breaker
}

// Node routes artifact keys across the member list and fetches from
// shard owners with per-peer breakers. All methods are safe for
// concurrent use.
type Node struct {
	cfg     Config
	self    string
	peers   []*peerNode
	members []string // self + peer addresses (routing universe)

	logMu sync.Mutex
	logFn func(format string, args ...any)

	obsMu  sync.Mutex
	obsReg *obs.Registry
	labels []obs.Label

	probeMu   sync.Mutex
	probeStop chan struct{}
	probeDone chan struct{}
}

// New builds a node over the validated member list. The peer list is
// re-validated here so a caller wiring addresses straight from flags
// cannot accidentally shard to itself or double-weight a member.
func New(cfg Config) (*Node, error) {
	peers, err := ValidateMembers(cfg.Self, cfg.Peers)
	if err != nil {
		return nil, err
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: self address required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 15 * time.Second
	}
	brCfg := cfg.Breaker
	if brCfg.Window == 0 {
		brCfg = breaker.Config{
			Window: 10 * time.Second, Buckets: 10,
			FailureRate: 0.5, MinSamples: 2,
			OpenFor: 3 * time.Second, HalfOpenProbes: 1, CloseAfter: 1,
		}
	}
	n := &Node{cfg: cfg, self: cfg.Self, logFn: cfg.Logf}
	n.members = append(n.members, cfg.Self)
	for _, addr := range peers {
		p := &peerNode{addr: addr}
		pc := brCfg
		user := pc.OnStateChange
		pc.OnStateChange = func(from, to breaker.State) {
			n.onBreakerChange(p.addr, from, to)
			if user != nil {
				user(from, to)
			}
		}
		p.br = breaker.New(pc)
		n.peers = append(n.peers, p)
		n.members = append(n.members, addr)
	}
	return n, nil
}

// ValidateMembers checks a peer/upstream address list against the
// node's own listen address: entries must parse as host:port, appear
// once, and never name the node itself (a node that dials itself
// probes — and fills from — its own cache, hiding real peer failures).
// Blank entries (stray commas) are dropped. The returned list keeps
// the surviving addresses in input order.
func ValidateMembers(self string, addrs []string) ([]string, error) {
	selfHost, selfPort, selfOK := splitAddr(self)
	seen := map[string]string{}
	var out []string
	for _, raw := range addrs {
		a := strings.TrimSpace(raw)
		if a == "" {
			continue
		}
		host, port, ok := splitAddr(a)
		if !ok {
			return nil, fmt.Errorf("cluster: address %q is not host:port", a)
		}
		norm := net.JoinHostPort(host, port)
		if prev, dup := seen[norm]; dup {
			return nil, fmt.Errorf("cluster: duplicate address %q (already listed as %q)", a, prev)
		}
		seen[norm] = a
		if selfOK && port == selfPort && hostsOverlap(selfHost, host) {
			return nil, fmt.Errorf("cluster: address %q is this node's own listen address %q", a, self)
		}
		out = append(out, a)
	}
	return out, nil
}

// splitAddr normalises an address for comparison: lowercased host
// ("localhost" folded to the loopback IP) plus port.
func splitAddr(a string) (host, port string, ok bool) {
	h, p, err := net.SplitHostPort(strings.TrimSpace(a))
	if err != nil || p == "" {
		return "", "", false
	}
	h = strings.ToLower(h)
	if h == "localhost" {
		h = "127.0.0.1"
	}
	return h, p, true
}

// hostsOverlap reports whether an address with host a can reach the
// same socket as one with host b on the same port: equal hosts, or a
// wildcard listen host on either side matched against a loopback or
// wildcard peer (the common "-addr :7400 -peers 127.0.0.1:7400"
// footgun).
func hostsOverlap(a, b string) bool {
	if a == b {
		return true
	}
	wild := func(h string) bool { return h == "" || h == "0.0.0.0" || h == "::" }
	loop := func(h string) bool { return h == "127.0.0.1" || h == "::1" }
	if wild(a) && (wild(b) || loop(b)) {
		return true
	}
	if wild(b) && (wild(a) || loop(a)) {
		return true
	}
	return false
}

// SelfAddr returns the node's own member address.
func (n *Node) SelfAddr() string { return n.self }

// Members returns the routing universe (self included).
func (n *Node) Members() []string { return append([]string(nil), n.members...) }

// SetLogf replaces the node's logger.
func (n *Node) SetLogf(f func(string, ...any)) {
	n.logMu.Lock()
	n.logFn = f
	n.logMu.Unlock()
}

func (n *Node) logf(format string, args ...any) {
	n.logMu.Lock()
	f := n.logFn
	n.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// SetObserver installs a telemetry registry for the cluster_* metric
// families; extra labels (typically the role) are attached to every
// series.
func (n *Node) SetObserver(r *obs.Registry, labels ...obs.Label) {
	n.obsMu.Lock()
	n.obsReg = r
	n.labels = labels
	n.obsMu.Unlock()
	for _, p := range n.peers {
		n.peerStateGauge(p.addr).Set(float64(p.br.State()))
	}
}

// registry returns the current registry and labels (nil-safe).
func (n *Node) registry() (*obs.Registry, []obs.Label) {
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	return n.obsReg, n.labels
}

func (n *Node) peerStateGauge(addr string) *obs.Gauge {
	r, labels := n.registry()
	if r == nil {
		return nil
	}
	return r.Gauge("cluster_peer_state",
		"Per-peer breaker state (0 closed, 1 half-open, 2 open).",
		append(append([]obs.Label{}, labels...), obs.L("peer", addr))...)
}

// RecordRoute counts one shard-routing decision: "local_owner" (this
// node owns the key and computes), "peer_fill" (filled from the
// owner), "fallback_compute" (owner unusable or served bad bytes, so
// this node computed locally).
func (n *Node) RecordRoute(decision string) {
	r, labels := n.registry()
	if r == nil {
		return
	}
	r.Counter("cluster_route_total",
		"Shard-routing decisions by outcome.",
		append(append([]obs.Label{}, labels...), obs.L("decision", decision))...).Inc()
}

func (n *Node) countFill() {
	r, labels := n.registry()
	if r == nil {
		return
	}
	r.Counter("cluster_peer_fills_total",
		"Artifacts filled from their shard owner instead of recomputed.", labels...).Inc()
}

func (n *Node) countFillFailure(reason string) {
	r, labels := n.registry()
	if r == nil {
		return
	}
	r.Counter("cluster_fill_failures_total",
		"Peer fills that failed, by reason (the requester computed locally).",
		append(append([]obs.Label{}, labels...), obs.L("reason", reason))...).Inc()
}

func (n *Node) countProbe() {
	r, labels := n.registry()
	if r == nil {
		return
	}
	r.Counter("cluster_probes_total",
		"Recovery probes sent to unhealthy peers.", labels...).Inc()
}

func (n *Node) onBreakerChange(addr string, from, to breaker.State) {
	n.logf("cluster: peer %s breaker %s -> %s", addr, from, to)
	if g := n.peerStateGauge(addr); g != nil {
		g.Set(float64(to))
	}
}

// Owner resolves the shard owner for (kind, digest), skipping peers
// whose breakers are open: when the true owner is down, the
// next-ranked healthy member acts as owner (it computes once and
// serves the shard until the owner returns — rendezvous ranking makes
// every node pick the same stand-in). self reports whether this node
// is the (acting) owner.
func (n *Node) Owner(kind, digest string) (addr string, self bool) {
	key := RouteKey(kind, digest)
	for _, m := range RankedOwners(n.members, key) {
		if m == n.self {
			return m, true
		}
		if p := n.peer(m); p != nil && p.br.State() != breaker.Open {
			return m, false
		}
	}
	return n.self, true
}

func (n *Node) peer(addr string) *peerNode {
	for _, p := range n.peers {
		if p.addr == addr {
			return p
		}
	}
	return nil
}

// Fetch retrieves one artifact's encoded bytes from the peer at addr,
// guarded by that peer's breaker and the configured deadlines. A clean
// remote miss (ErrNotFound) settles the breaker as a success — the
// peer answered correctly — while checksum mismatches, framing errors
// and timeouts count against it. Every error tells the caller to fall
// back to local compute; wrong bytes are never returned.
func (n *Node) Fetch(ctx context.Context, addr string, req FetchRequest) (payload []byte, err error) {
	sp := obs.StartSpan(ctx, "cluster.peer_fill")
	defer sp.End()
	sp.SetAttr("kind", req.Kind)
	sp.SetAttr("peer", addr)
	defer func() {
		if err != nil {
			sp.SetAttr("error", err.Error())
			n.countFillFailure(fillFailureReason(err))
		} else {
			sp.SetAttrInt("bytes", int64(len(payload)))
			n.countFill()
		}
	}()
	p := n.peer(addr)
	if p == nil {
		return nil, fmt.Errorf("%w: %s is not a member", ErrPeerUnavailable, addr)
	}
	done, ok := p.br.Allow()
	if !ok {
		return nil, fmt.Errorf("%w: breaker open for %s", ErrPeerUnavailable, addr)
	}
	payload, err = n.fetchOnce(ctx, addr, req)
	// A clean not-found is a healthy peer saying "compute it yourself";
	// only transport, framing and integrity failures open the breaker.
	done(err == nil || errors.Is(err, ErrNotFound))
	return payload, err
}

func (n *Node) fetchOnce(ctx context.Context, addr string, req FetchRequest) ([]byte, error) {
	conn, err := n.dialAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrPeerUnavailable, addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(n.cfg.FetchTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	if err := WriteFetchRequest(conn, req); err != nil {
		return nil, fmt.Errorf("%w: send to %s: %v", ErrPeerUnavailable, addr, err)
	}
	return ReadFetchResponse(conn, n.cfg.MaxArtifactBytes)
}

// fillFailureReason buckets a fetch error for the failure counter.
func fillFailureReason(err error) string {
	switch {
	case errors.Is(err, ErrChecksum):
		return "checksum"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	case errors.Is(err, ErrPeerUnavailable):
		return "unavailable"
	case errors.Is(err, ErrFraming):
		return "framing"
	default:
		return "other"
	}
}

func (n *Node) dialAddr(addr string) (net.Conn, error) {
	if n.cfg.Dial != nil {
		return n.cfg.Dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
}

// Start launches the recovery prober: unhealthy peers (anything not
// Closed) are dial-probed every ProbeEvery, driving their breakers
// open -> half-open -> closed as they rejoin, without waiting for a
// miss to route there. Idempotent; no-op when probing is disabled.
func (n *Node) Start() {
	if n.cfg.ProbeEvery <= 0 || len(n.peers) == 0 {
		return
	}
	n.probeMu.Lock()
	defer n.probeMu.Unlock()
	if n.probeStop != nil {
		return
	}
	n.probeStop = make(chan struct{})
	n.probeDone = make(chan struct{})
	go n.probeLoop(n.probeStop, n.probeDone)
}

func (n *Node) probeLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(n.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			for _, p := range n.peers {
				if p.br.State() == breaker.Closed {
					continue
				}
				brDone, ok := p.br.Allow()
				if !ok {
					continue
				}
				n.countProbe()
				conn, err := n.dialAddr(p.addr)
				if err == nil {
					conn.Close()
				}
				brDone(err == nil)
			}
		}
	}
}

// Stop halts the recovery prober and waits for it to exit. Idempotent
// and safe when Start was never called — shutdown paths call it
// unconditionally so probe goroutines never outlive the node.
func (n *Node) Stop() {
	n.probeMu.Lock()
	stop, done := n.probeStop, n.probeDone
	n.probeStop, n.probeDone = nil, nil
	n.probeMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
