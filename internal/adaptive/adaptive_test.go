package adaptive

import (
	"math"
	"testing"

	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/power"
	"repro/internal/scene"
	"repro/internal/video"
)

// playlist builds a multi-clip session long enough to stress a small pack.
func playlist(t *testing.T, repeats int) []*annotation.Track {
	t.Helper()
	opt := video.LibraryOptions{W: 32, H: 24, FPS: 8, DurationScale: 0.2}
	var out []*annotation.Track
	for i := 0; i < repeats; i++ {
		for _, name := range []string{"returnoftheking", "catwoman"} {
			clip := video.ClipByName(name, opt)
			track, _, err := core.Annotate(core.ClipSource{Clip: clip},
				scene.DefaultConfig(clip.FPS), nil)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, track)
		}
	}
	return out
}

// smallPack returns a pack sized so fixed-lossless cannot finish the
// session but aggressive quality can.
func smallPack(t *testing.T, pl []*annotation.Track, dev *display.Profile) *battery.Pack {
	t.Helper()
	pack := battery.IPAQ1900()
	pack.PeukertExponent = 1 // ideal pack: makes the sizing below exact
	// Scale capacity to ~90% of what lossless playback would need:
	// enough for aggressive quality (~86%) but not lossless.
	model := power.DefaultModel(dev)
	var seconds float64
	for _, tr := range pl {
		seconds += float64(tr.TotalFrames()) / float64(tr.FPS)
	}
	lossless := core.EstimateAveragePower(pl[0], dev, model, 0)
	needWh := lossless * seconds / 3600
	pack.CapacitymAh = needWh / pack.NominalVolts * 1000 * 0.90
	return pack
}

func TestFixedLosslessDiesEarly(t *testing.T) {
	dev := display.IPAQ5555()
	pl := playlist(t, 3)
	pack := smallPack(t, pl, dev)
	res, err := Simulate(pl, dev, pack, Fixed{QualityIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("lossless session completed; pack sizing broken")
	}
	if res.MeanQuality != 0 {
		t.Errorf("fixed-lossless mean quality = %v", res.MeanQuality)
	}
}

func TestAdaptiveCompletesWithModestQuality(t *testing.T) {
	dev := display.IPAQ5555()
	pl := playlist(t, 3)
	pack := smallPack(t, pl, dev)

	fixedAggressive, err := Simulate(pl, dev, pack, Fixed{QualityIndex: 4})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(pl, dev, pack, NewBatteryAware(dev))
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Completed {
		t.Fatalf("adaptive session did not complete: %+v", adaptive)
	}
	if !fixedAggressive.Completed {
		t.Fatalf("aggressive fixed session did not complete; scenario miscalibrated")
	}
	// The controller should not be more aggressive than always-20%.
	if adaptive.MeanQuality > fixedAggressive.MeanQuality+1e-9 {
		t.Errorf("adaptive mean quality %v worse than fixed-aggressive %v",
			adaptive.MeanQuality, fixedAggressive.MeanQuality)
	}
	lossless, err := Simulate(pl, dev, pack, Fixed{QualityIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.MinutesWatched <= lossless.MinutesWatched {
		t.Errorf("adaptive watched %v min, no better than lossless %v",
			adaptive.MinutesWatched, lossless.MinutesWatched)
	}
}

func TestAdaptiveRelaxesOnBigBattery(t *testing.T) {
	dev := display.IPAQ5555()
	pl := playlist(t, 1)
	pack := battery.IPAQ1900() // plenty for a short playlist
	res, err := Simulate(pl, dev, pack, NewBatteryAware(dev))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("session did not complete on a full pack")
	}
	if res.MeanQuality != 0 {
		t.Errorf("adaptive degraded (%v) despite ample battery", res.MeanQuality)
	}
}

func TestSimulateValidation(t *testing.T) {
	dev := display.IPAQ5555()
	pack := battery.IPAQ1900()
	if _, err := Simulate(nil, dev, pack, Fixed{}); err == nil {
		t.Error("empty playlist accepted")
	}
	bad := *pack
	bad.CapacitymAh = -1
	if _, err := Simulate(playlist(t, 1), dev, &bad, Fixed{}); err == nil {
		t.Error("invalid pack accepted")
	}
	degenerate := []*annotation.Track{{FPS: 0, Quality: []float64{0}}}
	if _, err := Simulate(degenerate, dev, pack, Fixed{}); err == nil {
		t.Error("degenerate track accepted")
	}
}

func TestFixedClampsIndex(t *testing.T) {
	dev := display.IPAQ5555()
	pl := playlist(t, 1)
	res, err := Simulate(pl, dev, battery.IPAQ1900(), Fixed{QualityIndex: 99})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanQuality-0.2) > 1e-9 {
		t.Errorf("clamped fixed policy used quality %v, want 0.2", res.MeanQuality)
	}
}

func TestPolicyNames(t *testing.T) {
	if (Fixed{QualityIndex: 2}).Name() != "fixed-2" {
		t.Error("Fixed name mismatch")
	}
	if NewBatteryAware(display.IPAQ5555()).Name() != "battery-aware" {
		t.Error("BatteryAware name mismatch")
	}
}
