package adaptive

import (
	"testing"

	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/compensate"
	"repro/internal/display"
)

// ladderTrack builds a synthetic 5-rung track for controller tests.
func ladderTrack(scenes int) *annotation.Track {
	tr := &annotation.Track{FPS: 24, Quality: compensate.QualityLevels}
	for i := 0; i < scenes; i++ {
		tr.Records = append(tr.Records, annotation.Record{
			Frames:  24,
			Targets: []uint8{220, 210, 200, 190, 180},
		})
	}
	return tr
}

func mustLadder(t *testing.T, cfg LadderConfig) *Ladder {
	t.Helper()
	l, err := NewLadder(ladderTrack(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLadderWalksDownAndRecovers(t *testing.T) {
	l := mustLadder(t, LadderConfig{StartRung: 1, MinDwell: 1, UpHold: 2, MaxSwitches: 10})
	// Healthy lead: hold the requested rung.
	if got := l.Decide(Inputs{LeadSeconds: 2.0}); got != 1 {
		t.Fatalf("healthy decide = %d, want 1", got)
	}
	// Collapsing lead: one rung down per decision, never past the floor.
	for i, want := range []int{2, 3, 4, 4} {
		if got := l.Decide(Inputs{LeadSeconds: 0.2}); got != want {
			t.Fatalf("throttled decide %d = %d, want %d", i, got, want)
		}
	}
	// Recovery: promotion needs UpHold consecutive high-lead decisions.
	if got := l.Decide(Inputs{LeadSeconds: 5}); got != 4 {
		t.Fatalf("first high-lead decide = %d, want hold at 4", got)
	}
	for i, want := range []int{3, 2, 1} {
		l.Decide(Inputs{LeadSeconds: 5})
		if got := l.Decide(Inputs{LeadSeconds: 5}); got != want {
			t.Fatalf("recovery step %d = %d, want %d", i, got, want)
		}
	}
	// Ceiling: never better than the requested rung.
	for i := 0; i < 6; i++ {
		if got := l.Decide(Inputs{LeadSeconds: 10}); got != 1 {
			t.Fatalf("decide above ceiling: %d", got)
		}
	}
	if l.Switches() != 6 {
		t.Errorf("switches = %d, want 6 (3 down, 3 up)", l.Switches())
	}
}

func TestLadderDwellHysteresis(t *testing.T) {
	l := mustLadder(t, LadderConfig{StartRung: 0, MinDwell: 3, UpHold: 1})
	if got := l.Decide(Inputs{LeadSeconds: 0}); got != 1 {
		t.Fatalf("first starved decide = %d, want 1", got)
	}
	// The next MinDwell-1 decisions must hold regardless of signal.
	for i := 0; i < 2; i++ {
		if got := l.Decide(Inputs{LeadSeconds: 0}); got != 1 {
			t.Fatalf("dwell decision %d moved to %d", i, got)
		}
	}
	if got := l.Decide(Inputs{LeadSeconds: 0}); got != 2 {
		t.Fatalf("post-dwell decide = %d, want 2", got)
	}
}

func TestLadderSwitchRateBound(t *testing.T) {
	l := mustLadder(t, LadderConfig{
		StartRung: 0, MinDwell: 1, UpHold: 1, MaxSwitches: 2, Window: 100,
	})
	// Oscillating signal wants a switch every decision; the window bound
	// must cap it at MaxSwitches.
	lead := 0.0
	for i := 0; i < 20; i++ {
		l.Decide(Inputs{LeadSeconds: lead})
		lead = 10 - lead
	}
	if l.Switches() != 2 {
		t.Errorf("switches under oscillation = %d, want 2 (rate-bounded)", l.Switches())
	}
}

func TestLadderBatteryFloor(t *testing.T) {
	dev := display.IPAQ5555()
	// An almost-empty gauge: the budget forces the worst rung even though
	// the network is healthy, bypassing dwell hysteresis.
	g := battery.NewGaugeWh(0.001)
	l, err := NewLadder(ladderTrack(32), LadderConfig{
		StartRung: 0, Battery: g, Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Decide(Inputs{LeadSeconds: 10, RemainingSeconds: 30}); got != 4 {
		t.Errorf("starved-battery decide = %d, want floor 4", got)
	}
	// Fully empty gauge pins the floor too.
	g.Drain(1e9)
	if got := l.Decide(Inputs{LeadSeconds: 10, RemainingSeconds: 30}); got != 4 {
		t.Errorf("empty-battery decide = %d, want floor 4", got)
	}

	// A healthy gauge imposes no floor.
	rich, err := NewGauge(t)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLadder(ladderTrack(32), LadderConfig{
		StartRung: 0, Battery: rich, Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Decide(Inputs{LeadSeconds: 10, RemainingSeconds: 30}); got != 0 {
		t.Errorf("healthy-battery decide = %d, want 0", got)
	}
}

// NewGauge builds a comfortably full gauge for tests.
func NewGauge(t *testing.T) (*battery.Gauge, error) {
	t.Helper()
	return battery.NewGauge(battery.IPAQ1900(), 2.0)
}

func TestLadderConfigValidation(t *testing.T) {
	if _, err := NewLadder(nil, LadderConfig{}); err == nil {
		t.Error("nil track accepted")
	}
	if _, err := NewLadder(ladderTrack(1), LadderConfig{StartRung: 5}); err == nil {
		t.Error("out-of-range start rung accepted")
	}
	if _, err := NewLadder(ladderTrack(1), LadderConfig{StartRung: -1}); err == nil {
		t.Error("negative start rung accepted")
	}
	g := battery.NewGaugeWh(1)
	if _, err := NewLadder(ladderTrack(1), LadderConfig{Battery: g}); err == nil {
		t.Error("battery floor without device accepted")
	}
}
