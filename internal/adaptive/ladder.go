package adaptive

import (
	"fmt"

	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/power"
)

// The offline Simulate above re-decides quality with perfect knowledge
// of the whole session. Ladder is the same idea promoted to a live
// control loop: fed playout-buffer lead (network health) and battery
// state at each scene boundary, it walks the quality ladder one rung at
// a time with hysteresis, so a session degrades gracefully under a
// throttle instead of stalling, and recovers afterwards without
// flapping. Few, small switches is the design goal: quality-steady
// streaming is where the end-user power savings live (Herglotz & Kaup,
// arXiv 2305.15117).

// LadderConfig tunes the runtime quality-ladder controller. The zero
// value of any field takes the documented default.
type LadderConfig struct {
	// StartRung is the quality index the session was requested at. It is
	// also the ceiling: the ladder never serves better quality than the
	// user asked for.
	StartRung int
	// DownLead is the buffered-seconds threshold under which the ladder
	// walks down one rung (default 1.0s).
	DownLead float64
	// UpLead is the buffered-seconds threshold above which the ladder
	// considers walking back up (default 3.0s).
	UpLead float64
	// MinDwell is how many decisions the ladder holds after any switch
	// before it may switch again (default 2).
	MinDwell int
	// UpHold is how many consecutive above-UpLead decisions are required
	// before a promotion — recovery must prove itself (default 2).
	UpHold int
	// MaxSwitches bounds rung changes per rolling Window of decisions
	// (default 4 per 16), the 2305.15117 switch-rate bound.
	MaxSwitches int
	// Window is the rolling decision window for MaxSwitches (default 16).
	Window int
	// Battery, when set, imposes a floor: the ladder never picks a rung
	// whose projected power exceeds the remaining budget, and an empty
	// gauge pins the bottom rung.
	Battery *battery.Gauge
	// Device is required when Battery is set, for the power projection.
	Device *display.Profile
}

func (c LadderConfig) withDefaults() LadderConfig {
	if c.DownLead == 0 {
		c.DownLead = 1.0
	}
	if c.UpLead == 0 {
		c.UpLead = 3.0
	}
	if c.MinDwell == 0 {
		c.MinDwell = 2
	}
	if c.UpHold == 0 {
		c.UpHold = 2
	}
	if c.MaxSwitches == 0 {
		c.MaxSwitches = 4
	}
	if c.Window == 0 {
		c.Window = 16
	}
	return c
}

// Ladder is the live controller state for one session.
type Ladder struct {
	cfg     LadderConfig
	track   *annotation.Track
	model   *power.Model
	cur     int
	floor   int // worst rung (highest quality index)
	decided int // decisions so far
	dwell   int // decisions since the last switch
	upRun   int // consecutive above-UpLead decisions
	log     []int // decision indexes of past switches (rolling-window bound)
	switches int
}

// Inputs is the signal set for one ladder decision, sampled at a scene
// boundary.
type Inputs struct {
	// LeadSeconds is the playout buffer's current lead
	// (netsched.Buffer.LeadSeconds).
	LeadSeconds float64
	// RemainingSeconds is the content time left to play, for the battery
	// budget projection.
	RemainingSeconds float64
}

// NewLadder builds the controller for a session on the given track,
// starting (and capped) at cfg.StartRung.
func NewLadder(track *annotation.Track, cfg LadderConfig) (*Ladder, error) {
	if track == nil || len(track.Quality) == 0 {
		return nil, fmt.Errorf("adaptive: ladder needs an annotated track")
	}
	if cfg.StartRung < 0 || cfg.StartRung >= len(track.Quality) {
		return nil, fmt.Errorf("adaptive: start rung %d outside ladder [0,%d]",
			cfg.StartRung, len(track.Quality)-1)
	}
	if cfg.Battery != nil && cfg.Device == nil {
		return nil, fmt.Errorf("adaptive: battery floor needs a device profile")
	}
	l := &Ladder{
		cfg:   cfg.withDefaults(),
		track: track,
		cur:   cfg.StartRung,
		floor: len(track.Quality) - 1,
	}
	if cfg.Device != nil {
		l.model = power.DefaultModel(cfg.Device)
	}
	// Start fully dwelled so a collapse in the very first scenes can be
	// answered immediately.
	l.dwell = l.cfg.MinDwell
	return l, nil
}

// Rung returns the rung currently in force.
func (l *Ladder) Rung() int { return l.cur }

// Config returns the controller's effective configuration, defaults
// applied — callers gate their sampling on the same thresholds.
func (l *Ladder) Config() LadderConfig { return l.cfg }

// Switches returns how many rung changes Decide has made.
func (l *Ladder) Switches() int { return l.switches }

// batteryFloor returns the best (lowest) rung the remaining battery
// budget allows, mirroring BatteryAware.Pick against the live gauge.
func (l *Ladder) batteryFloor(remainingSeconds float64) int {
	g := l.cfg.Battery
	if g == nil {
		return 0
	}
	if g.Empty() {
		return l.floor
	}
	if remainingSeconds <= 0 {
		return 0
	}
	budgetWatts := g.RemainingWh() * 3600 / remainingSeconds * safetyMargin
	for qi := range l.track.Quality {
		if core.EstimateAveragePower(l.track, l.cfg.Device, l.model, qi) <= budgetWatts {
			return qi
		}
	}
	return l.floor
}

// Decide runs one control step and returns the rung for the next
// scene. Network pressure moves one rung at a time; the battery floor
// is a hard constraint and may jump further; hysteresis (dwell, up-hold
// and the rolling switch-rate bound) applies to network moves only —
// running the battery flat is worse than one extra switch.
func (l *Ladder) Decide(in Inputs) int {
	l.decided++
	l.dwell++

	desired := l.cur
	switch {
	case in.LeadSeconds < l.cfg.DownLead:
		l.upRun = 0
		if desired < l.floor {
			desired++
		}
	case in.LeadSeconds > l.cfg.UpLead:
		l.upRun++
		if l.upRun >= l.cfg.UpHold && desired > l.cfg.StartRung {
			desired--
		}
	default:
		l.upRun = 0
	}

	if desired != l.cur && !l.maySwitch() {
		desired = l.cur
	}

	// Battery floor is not subject to hysteresis: it only ever forces
	// quality down, and ignoring it costs the rest of the session.
	if bf := l.batteryFloor(in.RemainingSeconds); desired < bf {
		desired = bf
	}

	if desired != l.cur {
		l.cur = desired
		l.switches++
		l.dwell = 0
		l.upRun = 0
		l.log = append(l.log, l.decided)
	}
	return l.cur
}

// maySwitch applies the switch-rate hysteresis: minimum dwell since the
// last switch, and at most MaxSwitches inside the rolling Window.
func (l *Ladder) maySwitch() bool {
	if l.dwell < l.cfg.MinDwell {
		return false
	}
	recent := 0
	for i := len(l.log) - 1; i >= 0; i-- {
		if l.decided-l.log[i] >= l.cfg.Window {
			break
		}
		recent++
	}
	return recent < l.cfg.MaxSwitches
}
