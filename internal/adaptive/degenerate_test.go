package adaptive

import (
	"math"
	"testing"

	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/compensate"
	"repro/internal/display"
)

func TestSimulateEmptyPlaylist(t *testing.T) {
	if _, err := Simulate(nil, display.IPAQ5555(), battery.IPAQ1900(), Fixed{}); err == nil {
		t.Error("empty playlist accepted")
	}
	if _, err := Simulate([]*annotation.Track{}, display.IPAQ5555(), battery.IPAQ1900(), Fixed{}); err == nil {
		t.Error("zero-length playlist accepted")
	}
}

func TestSimulateSingleSceneClip(t *testing.T) {
	tr := ladderTrack(1)
	res, err := Simulate([]*annotation.Track{tr}, display.IPAQ5555(), battery.IPAQ1900(), NewBatteryAware(display.IPAQ5555()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.QualityChanges != 0 {
		t.Errorf("single-scene session: completed=%v changes=%d, want true/0",
			res.Completed, res.QualityChanges)
	}
	want := float64(tr.TotalFrames()) / float64(tr.FPS) / 60
	if math.Abs(res.MinutesWatched-want) > 1e-9 {
		t.Errorf("MinutesWatched = %v, want %v", res.MinutesWatched, want)
	}
}

func TestSimulateZeroDurationScenes(t *testing.T) {
	// A track whose every scene is zero frames is degenerate and must be
	// rejected, not divided by.
	empty := &annotation.Track{FPS: 24, Quality: compensate.QualityLevels,
		Records: []annotation.Record{{Frames: 0, Targets: []uint8{200, 200, 200, 200, 200}}}}
	if _, err := Simulate([]*annotation.Track{empty}, display.IPAQ5555(), battery.IPAQ1900(), Fixed{}); err == nil {
		t.Error("all-zero-duration track accepted")
	}

	// A zero-duration scene mixed into a real clip contributes nothing
	// but must not poison the accounting with NaNs.
	mixed := ladderTrack(4)
	mixed.Records[2].Frames = 0
	res, err := Simulate([]*annotation.Track{mixed}, display.IPAQ5555(), battery.IPAQ1900(), NewBatteryAware(display.IPAQ5555()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || math.IsNaN(res.MeanQuality) || math.IsNaN(res.MinutesWatched) {
		t.Errorf("zero-duration scene broke accounting: %+v", res)
	}
	want := 3.0 * 24 / 24 / 60 // three real one-second scenes
	if math.Abs(res.MinutesWatched-want) > 1e-9 {
		t.Errorf("MinutesWatched = %v, want %v", res.MinutesWatched, want)
	}
}

func TestSimulateBatteryEmptyAtStart(t *testing.T) {
	pack := battery.IPAQ1900()
	pack.CapacitymAh = 0.001 // microscopic but valid: dies in the first scene
	res, err := Simulate([]*annotation.Track{ladderTrack(8)}, display.IPAQ5555(), pack, Fixed{QualityIndex: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("session on an empty battery completed")
	}
	if res.MinutesWatched > 0.01 || math.IsNaN(res.MinutesWatched) {
		t.Errorf("MinutesWatched = %v, want ~0", res.MinutesWatched)
	}
	if math.IsNaN(res.MeanQuality) {
		t.Errorf("MeanQuality = NaN")
	}
}
