// Package adaptive closes the loop the paper leaves to the user: §4.2 has
// the user pick a fixed quality level when requesting a clip. With the
// annotation track available up front, the client can instead re-decide at
// every scene boundary — degrade quality only when the battery would
// otherwise not last the session, and recover when it would. The paper's
// QoS-energy trade-off, made into a controller.
//
// The simulation plays a playlist of annotated clips against a battery,
// draining energy scene by scene, and reports minutes watched, mean
// quality used, and whether the session completed.
package adaptive

import (
	"fmt"

	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/power"
)

// Policy picks the quality index for the next scene.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the quality index to use for the upcoming scene.
	// remainingWh is the usable energy left, remainingSeconds the
	// playlist time left including this scene.
	Pick(track *annotation.Track, scene int, remainingWh, remainingSeconds float64) int
}

// Fixed always uses one quality index.
type Fixed struct {
	QualityIndex int
}

// Name implements Policy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%d", f.QualityIndex) }

// Pick implements Policy.
func (f Fixed) Pick(track *annotation.Track, _ int, _, _ float64) int {
	if f.QualityIndex >= len(track.Quality) {
		return len(track.Quality) - 1
	}
	return f.QualityIndex
}

// BatteryAware degrades only as far as the remaining budget requires: it
// picks the lowest (best-quality) index whose predicted power over the
// rest of the session fits the remaining energy.
type BatteryAware struct {
	dev   *display.Profile
	model *power.Model
}

// NewBatteryAware builds the adaptive policy for a device.
func NewBatteryAware(dev *display.Profile) *BatteryAware {
	return &BatteryAware{dev: dev, model: power.DefaultModel(dev)}
}

// Name implements Policy.
func (b *BatteryAware) Name() string { return "battery-aware" }

// safetyMargin discounts the power budget: the forecast uses the track's
// whole-session average, so without headroom the controller can die in a
// final scene brighter than the mean.
const safetyMargin = 0.97

// Pick implements Policy.
func (b *BatteryAware) Pick(track *annotation.Track, _ int, remainingWh, remainingSeconds float64) int {
	if remainingSeconds <= 0 {
		return 0
	}
	budgetWatts := remainingWh * 3600 / remainingSeconds * safetyMargin
	for qi := range track.Quality {
		if core.EstimateAveragePower(track, b.dev, b.model, qi) <= budgetWatts {
			return qi
		}
	}
	return len(track.Quality) - 1
}

// Result summarises a simulated session.
type Result struct {
	Policy string
	// MinutesWatched until the battery died or the playlist ended.
	MinutesWatched float64
	// PlaylistMinutes is the full playlist length.
	PlaylistMinutes float64
	// Completed reports whether the whole playlist played.
	Completed bool
	// MeanQuality is the time-weighted mean clipping budget used
	// (0 = always lossless).
	MeanQuality float64
	// QualityChanges counts mid-session quality switches.
	QualityChanges int
}

// Simulate plays the playlist (each entry one annotated clip) on the
// device against the pack under the policy. Energy accounting uses the
// pack's nominal capacity (the Peukert correction is applied once at the
// session's initial projected load).
func Simulate(playlist []*annotation.Track, dev *display.Profile, pack *battery.Pack, policy Policy) (Result, error) {
	if len(playlist) == 0 {
		return Result{}, fmt.Errorf("adaptive: empty playlist")
	}
	if err := pack.Validate(); err != nil {
		return Result{}, err
	}
	if err := dev.Validate(); err != nil {
		return Result{}, err
	}
	model := power.DefaultModel(dev)
	dev.BuildInverse()

	var totalSeconds float64
	for _, track := range playlist {
		if track.TotalFrames() == 0 || track.FPS <= 0 {
			return Result{}, fmt.Errorf("adaptive: degenerate track in playlist")
		}
		totalSeconds += float64(track.TotalFrames()) / float64(track.FPS)
	}

	// Usable energy, rate-corrected at the session's projected mid load.
	projected := core.EstimateAveragePower(playlist[0], dev, model, len(playlist[0].Quality)/2)
	remainingWh := pack.EffectiveWattHours(projected)

	res := Result{Policy: policy.Name(), PlaylistMinutes: totalSeconds / 60}
	remainingSeconds := totalSeconds
	prevQ := -1
	var qualityWeighted float64

	for _, track := range playlist {
		for si, rec := range track.Records {
			secs := float64(rec.Frames) / float64(track.FPS)
			qi := policy.Pick(track, si, remainingWh, remainingSeconds)
			if qi < 0 || qi >= len(track.Quality) {
				return Result{}, fmt.Errorf("adaptive: policy %s picked quality %d", policy.Name(), qi)
			}
			if prevQ >= 0 && qi != prevQ {
				res.QualityChanges++
			}
			prevQ = qi
			level := dev.LevelFor(float64(rec.Targets[qi]) / 255)
			watts := model.Instant(power.State{
				Decoding: true, NetworkActive: true, BacklightLevel: level,
			})
			needWh := watts * secs / 3600
			if needWh >= remainingWh {
				// Battery dies partway through this scene.
				frac := remainingWh / needWh
				res.MinutesWatched += secs * frac / 60
				qualityWeighted += track.Quality[qi] * secs * frac
				res.MeanQuality = qualityWeighted / (res.MinutesWatched * 60)
				return res, nil
			}
			remainingWh -= needWh
			remainingSeconds -= secs
			res.MinutesWatched += secs / 60
			qualityWeighted += track.Quality[qi] * secs
		}
	}
	res.Completed = true
	if res.MinutesWatched > 0 {
		res.MeanQuality = qualityWeighted / (res.MinutesWatched * 60)
	}
	return res, nil
}
