// End-to-end telemetry test: start the annotating server with a debug
// endpoint, stream a clip through server and proxy paths, scrape
// /metrics over HTTP, and assert the exposition is parseable and the
// pipeline counters and stage-latency histograms moved — the runtime
// observability the paper's quantitative claims depend on.
package repro_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/video"
)

// scrape fetches path from the debug server and returns the body.
func scrape(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// parseExposition feeds the scrape body through the typed parser in
// internal/obs (strict: malformed lines and duplicate series fail) and
// flattens it back to sample values keyed by "name{labels}" so the
// assertions below stay literal.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	e, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition: %v", err)
	}
	samples := map[string]float64{}
	for _, name := range e.Names() {
		for _, s := range e.Samples(name) {
			key := s.Name
			if len(s.Labels) > 0 {
				parts := make([]string, len(s.Labels))
				for i, l := range s.Labels {
					parts[i] = l.Key + `="` + l.Value + `"`
				}
				key += "{" + strings.Join(parts, ",") + "}"
			}
			samples[key] = s.Value
		}
	}
	return samples
}

func TestDebugEndpointScrape(t *testing.T) {
	clip := video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 10, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.75, HighlightFrac: 0.01},
		{Frames: 10, BaseLuma: 0.2, LumaSpread: 0.12, MaxLuma: 0.95, HighlightFrac: 0.01},
	})
	catalog := map[string]core.Source{"night": core.ClipSource{Clip: clip}}

	reg := obs.NewRegistry()
	ds, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr().String()

	srv := stream.NewServer(catalog)
	srv.SetLogf(func(string, ...any) {})
	srv.SetObserver(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy := stream.NewProxy(addr.String())
	proxy.SetLogf(func(string, ...any) {})
	proxy.SetObserver(reg)
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client := &stream.Client{Device: display.IPAQ5555(), Obs: reg}
	// Two direct sessions (second hits both caches) plus one proxied
	// session (exercises the raw path and upstream latency histogram).
	for i := 0; i < 2; i++ {
		if _, err := client.Play(addr.String(), "night", 0.10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Play(proxyAddr.String(), "night", 0.10); err != nil {
		t.Fatal(err)
	}

	if body := scrape(t, base, "/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}
	metrics := scrape(t, base, "/metrics")
	samples := parseExposition(t, metrics)

	atLeast := func(key string, min float64) {
		t.Helper()
		v, ok := samples[key]
		if !ok {
			t.Errorf("metric %s missing from scrape", key)
			return
		}
		if v < min {
			t.Errorf("%s = %v, want >= %v", key, v, min)
		}
	}
	// Sessions have drained, so conns gauges exist and read zero.
	if v, ok := samples[`stream_active_conns{role="server"}`]; !ok || v != 0 {
		t.Errorf(`stream_active_conns{role="server"} = %v, %v; want 0 after sessions end`, v, ok)
	}
	atLeast(`stream_conns_total{role="server"}`, 3) // 2 direct + 1 raw fetch
	atLeast(`stream_conns_total{role="proxy"}`, 1)
	// 2 annotated sessions + 1 raw stream, 20 frames each.
	atLeast(`stream_frames_sent_total{role="server"}`, 60)
	atLeast(`stream_frames_sent_total{role="proxy"}`, 20)
	atLeast(`stream_bytes_sent_total{role="server"}`, 1000)
	atLeast(`anncache_misses_total{kind="track",role="server"}`, 1)
	atLeast(`anncache_hits_total{kind="track",role="server"}`, 1)
	atLeast(`anncache_misses_total{kind="variant",role="server"}`, 1)
	atLeast(`anncache_hits_total{kind="variant",role="server"}`, 1)
	atLeast(`anncache_misses_total{kind="track",role="proxy"}`, 1)
	atLeast(`anncache_entries{role="server"}`, 3)
	// Offline-pipeline stage latency histograms (server + proxy ran it).
	atLeast(`span_duration_seconds_count{span="annotate.luma_stats"}`, 2)
	atLeast(`span_duration_seconds_count{span="annotate.scene_detect"}`, 2)
	atLeast(`span_duration_seconds_bucket{span="annotate.scene_detect",le="+Inf"}`, 2)
	atLeast(`span_duration_seconds_count{span="stream.compensate_encode"}`, 1)
	atLeast(`proxy_upstream_latency_seconds_count{role="proxy"}`, 1)
	// Online-path client telemetry.
	atLeast(`client_frames_decoded_total`, 60)
	atLeast(`client_bytes_received_total`, 1000)
	atLeast(`span_duration_seconds_count{span="client.decode"}`, 60)
	atLeast(`pipeline_frames_processed_total`, 40)
	atLeast(`pipeline_scenes_detected_total`, 4)
	// Power-ledger aggregation: the client accounted 3 sessions, the
	// server served 2 annotated ones, the proxy 1.
	atLeast(`session_total{role="client"}`, 3)
	atLeast(`session_total{role="server"}`, 2)
	atLeast(`session_total{role="proxy"}`, 1)
	atLeast(`session_frames_total{role="client"}`, 60)
	atLeast(`power_baseline_joules{role="client"}`, 0.001)
	// Runtime health, rendered at scrape time.
	atLeast(`go_goroutines`, 1)
	atLeast(`go_heap_alloc_bytes`, 1)
	atLeast(`process_start_time_seconds`, 1)

	// Histogram invariant: +Inf bucket equals the series count.
	inf := samples[`span_duration_seconds_bucket{span="client.decode",le="+Inf"}`]
	cnt := samples[`span_duration_seconds_count{span="client.decode"}`]
	if inf != cnt {
		t.Errorf("client.decode +Inf bucket %v != count %v", inf, cnt)
	}

	// The other debug endpoints respond too.
	if body := scrape(t, base, "/debug/spans"); !strings.Contains(body, "annotate.scene_detect") {
		t.Errorf("/debug/spans missing pipeline spans: %q", body)
	}
	if body := scrape(t, base, "/debug/vars"); !strings.Contains(body, "memstats") {
		t.Error("/debug/vars not serving expvar")
	}
	if body := scrape(t, base, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ not serving the pprof index")
	}
}

// TestScrapeWhileStreaming scrapes /metrics concurrently with active
// sessions — the registry must tolerate reads under write load (run
// with -race).
func TestScrapeWhileStreaming(t *testing.T) {
	clip := video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 12, BaseLuma: 0.2, LumaSpread: 0.1, MaxLuma: 0.8, HighlightFrac: 0.01},
	})
	reg := obs.NewRegistry()
	ds, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	srv := stream.NewServer(map[string]core.Source{"night": core.ClipSource{Clip: clip}})
	srv.SetLogf(func(string, ...any) {})
	srv.SetObserver(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			client := &stream.Client{Device: display.IPAQ5555(), Obs: reg}
			_, err := client.Play(addr.String(), "night", float64(i%3)*0.05)
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		resp, err := http.Get("http://" + ds.Addr().String() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stream_frames_sent_total") {
		t.Error("frames-sent counter never registered")
	}
}
