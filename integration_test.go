// End-to-end integration tests spanning the whole system: file round
// trips through the container, cross-device consistency, determinism of
// the experiment harness, and stability of the headline results across
// the generator's duration scaling.
package repro_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/experiments"
	"repro/internal/frame"
	"repro/internal/scene"
	"repro/internal/video"
)

// TestFileRoundTripPlayback writes an annotated container to disk, reads
// it back, decodes every frame, and replays the backlight schedule —
// the cmd/annotate + cmd/player path as a library-level test.
func TestFileRoundTripPlayback(t *testing.T) {
	clip := video.ClipByName("themovie", video.LibraryOptions{
		W: 48, H: 36, FPS: 8, DurationScale: 0.08,
	})
	src := core.ClipSource{Clip: clip}
	track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "clip.avs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := container.NewWriter(f, container.Header{
		W: clip.W, H: clip.H, FPS: clip.FPS,
		FrameCount: clip.TotalFrames(), Annotations: track,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.NewEncoder(clip.W, clip.H, clip.FPS, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clip.TotalFrames(); i++ {
		ef, err := enc.Encode(clip.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.WriteFrame(ef); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Read back and play.
	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	r, err := container.NewReader(in)
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Header()
	if hdr.Annotations == nil {
		t.Fatal("annotations lost in file round trip")
	}
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		t.Fatal(err)
	}
	dev := display.IPAQ5555()
	cursor := hdr.Annotations.NewCursor(hdr.Annotations.QualityIndex(0.10))
	frames := 0
	var psnrSum float64
	level := display.MaxLevel
	levels := map[int]bool{}
	for {
		ef, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(ef)
		if err != nil {
			t.Fatal(err)
		}
		if target, start := cursor.Next(); start {
			level = dev.LevelFor(target)
		}
		levels[level] = true
		psnrSum += clip.Frame(frames).PSNR(got)
		frames++
	}
	if frames != clip.TotalFrames() {
		t.Fatalf("decoded %d frames, want %d", frames, clip.TotalFrames())
	}
	if avg := psnrSum / float64(frames); avg < 28 {
		t.Errorf("mean decode PSNR = %.1f dB", avg)
	}
	if len(levels) < 2 {
		t.Errorf("backlight never changed across scenes: %v", levels)
	}
}

// TestCrossDeviceConsistency checks the same annotated stream drives all
// three devices sensibly: identical scene schedule, device-specific levels,
// savings reflecting each backlight technology.
func TestCrossDeviceConsistency(t *testing.T) {
	clip := video.ClipByName("catwoman", video.LibraryOptions{
		W: 40, H: 30, FPS: 8, DurationScale: 0.1,
	})
	src := core.ClipSource{Clip: clip}
	track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		t.Fatal(err)
	}
	savings := map[string]float64{}
	for _, dev := range display.Devices() {
		rep, err := core.Play(src, track, core.PlaybackOptions{Device: dev, Quality: 0.10})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scenes != len(track.Records) {
			t.Errorf("%s: scene count drifted", dev.Name)
		}
		savings[dev.Name] = rep.BacklightSavings
		if rep.BacklightSavings <= 0.1 {
			t.Errorf("%s: savings %v implausibly low on a dark clip", dev.Name, rep.BacklightSavings)
		}
	}
	// The LED device dims deeper for the same targets (concave transfer).
	if savings["ipaq5555"] <= savings["ipaq3650"] {
		t.Errorf("LED savings %v not above CCFL %v", savings["ipaq5555"], savings["ipaq3650"])
	}
}

// TestHarnessDeterminism renders the full Figure 9 sweep twice and
// requires bit-identical results — the property EXPERIMENTS.md relies on.
func TestHarnessDeterminism(t *testing.T) {
	opt := experiments.Options{
		Library: video.LibraryOptions{W: 40, H: 30, FPS: 6, DurationScale: 0.1},
		Device:  display.IPAQ5555(),
	}
	var a, b bytes.Buffer
	rows1, err := experiments.Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	experiments.FprintFig9(&a, rows1)
	rows2, err := experiments.Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	experiments.FprintFig9(&b, rows2)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Figure 9 not deterministic across runs")
	}
}

// TestScaleInvariance verifies that the *shape* of the headline result is
// stable when the clip durations are scaled: per-clip values drift with
// the sampled scene mix, but dark clips always dominate bright ones, the
// bright clips stay limited, and the 5% quality jump persists.
func TestScaleInvariance(t *testing.T) {
	darkClips := []string{"themovie", "catwoman", "i_robot", "returnoftheking", "spiderman2"}
	brightClips := []string{"hunter_subres", "ice_age"}
	for _, scale := range []float64{0.1, 0.3} {
		opt := experiments.Options{
			Library: video.LibraryOptions{W: 40, H: 30, FPS: 6, DurationScale: scale},
			Device:  display.IPAQ5555(),
		}
		rows, err := experiments.Sweep(opt)
		if err != nil {
			t.Fatal(err)
		}
		byClip := map[string]experiments.SavingsRow{}
		for _, r := range rows {
			byClip[r.Clip] = r
		}
		var darkSum, brightSum float64
		for _, n := range darkClips {
			darkSum += byClip[n].Backlight[2]
		}
		for _, n := range brightClips {
			brightSum += byClip[n].Backlight[2]
		}
		darkMean := darkSum / float64(len(darkClips))
		brightMean := brightSum / float64(len(brightClips))
		if darkMean < 0.40 {
			t.Errorf("scale %v: dark-clip mean savings %.2f below band", scale, darkMean)
		}
		if brightMean > 0.35 {
			t.Errorf("scale %v: bright-clip mean savings %.2f above band", scale, brightMean)
		}
		if darkMean <= brightMean+0.2 {
			t.Errorf("scale %v: dark clips (%.2f) do not dominate bright (%.2f)",
				scale, darkMean, brightMean)
		}
		// The 5% quality jump persists on the dark clips in aggregate.
		var q0, q5 float64
		for _, n := range darkClips {
			q0 += byClip[n].Backlight[0]
			q5 += byClip[n].Backlight[1]
		}
		if q5-q0 < 0.10*float64(len(darkClips)) {
			t.Errorf("scale %v: aggregate 5%% jump too small (%.2f -> %.2f)", scale, q0, q5)
		}
	}
}

// TestCodecOddAndTinySizes exercises the encoder/decoder across raster
// shapes that stress block and macroblock edge handling.
func TestCodecOddAndTinySizes(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {15, 9}, {16, 16}, {17, 33}, {1, 1}, {3, 50}} {
		w, h := dims[0], dims[1]
		enc, err := codec.NewEncoder(w, h, 2, 6)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		dec, err := codec.NewDecoder(w, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			src := frame.New(w, h)
			for j := range src.Pix {
				src.Pix[j].R = uint8((j*17 + i*31) % 256)
				src.Pix[j].G = uint8((j * 3) % 256)
				src.Pix[j].B = uint8((j*7 + i) % 256)
			}
			ef, err := enc.Encode(src)
			if err != nil {
				t.Fatalf("%dx%d frame %d: %v", w, h, i, err)
			}
			got, err := dec.Decode(ef)
			if err != nil {
				t.Fatalf("%dx%d frame %d: %v", w, h, i, err)
			}
			if got.W != w || got.H != h {
				t.Fatalf("%dx%d: decoded %dx%d", w, h, got.W, got.H)
			}
		}
	}
}

// TestAnnotationSurvivesContainerAndStreamEquivalence ensures the track a
// client receives equals the one the server computed, byte for byte.
func TestAnnotationSurvivesContainer(t *testing.T) {
	clip := video.ClipByName("officexp", video.LibraryOptions{
		W: 32, H: 24, FPS: 6, DurationScale: 0.2,
	})
	src := core.ClipSource{Clip: clip}
	track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := container.NewWriter(&buf, container.Header{
		W: clip.W, H: clip.H, FPS: clip.FPS, Annotations: track,
	}); err != nil {
		t.Fatal(err)
	}
	r, err := container.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Header().Annotations
	if !bytes.Equal(got.Encode(), track.Encode()) {
		t.Error("annotation bytes changed through the container")
	}
}
