// Command player plays an annotated container stream (.avs) the way the
// paper's modified Berkeley MPEG player does on the iPAQ: it decodes every
// frame, follows the annotation track to set the backlight per scene at
// the requested quality level, and reports the power accounting of the run
// (both the analytic integration and the simulated DAQ measurement).
//
// Usage:
//
//	player -i rotk.avs [-device ipaq5555] [-quality 0.10] [-compensate]
//	       [-battery 7.4] [-debug-addr :7402] [-log-level info]
//
// With -debug-addr the player serves its decode/backlight telemetry over
// HTTP while playing (Prometheus /metrics, /healthz, /debug/pprof).
// Playback feeds the per-session power ledger; the run ends with its
// report ("power saved: NN.N%"), which integrates the same states as
// the offline model and so agrees with the analytic figures exactly.
// -log-level selects the threshold for the structured key=value events
// (power_report at info, per-scene power_scene at debug).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/annotation"
	"repro/internal/codec"
	"repro/internal/compensate"
	"repro/internal/container"
	"repro/internal/display"
	"repro/internal/obs"
	"repro/internal/power"
)

func main() {
	in := flag.String("i", "", "input .avs path")
	deviceName := flag.String("device", "ipaq5555", "device profile")
	quality := flag.Float64("quality", 0.10, "accepted clipping budget (0..0.20)")
	doCompensate := flag.Bool("compensate", true, "apply client-side compensation")
	methodName := flag.String("method", "contrast", "compensation method (contrast, tonemap)")
	battery := flag.Float64("battery", 7.4, "battery capacity in watt-hours")
	traceOut := flag.String("trace", "", "write the power trace as CSV to this path")
	dumpDir := flag.String("dump-ppm", "", "dump decoded frames as PPM files into this directory")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
	logLevel := flag.String("log-level", "info", "structured event threshold (debug, info, warn, error)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "player:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, lvl)

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		ds, err := obs.ServeDebug(*debugAddr, reg)
		exitOn(err)
		defer ds.Close()
		fmt.Printf("debug endpoint on http://%s/metrics\n", ds.Addr())
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "player: -i is required")
		os.Exit(2)
	}
	dev := display.ByName(*deviceName)
	if dev == nil {
		fmt.Fprintf(os.Stderr, "player: unknown device %q\n", *deviceName)
		os.Exit(2)
	}
	if err := compensate.ValidateBudget(*quality); err != nil {
		fmt.Fprintln(os.Stderr, "player:", err)
		os.Exit(2)
	}
	var method compensate.Method
	switch *methodName {
	case "contrast":
		method = compensate.ContrastEnhancement
	case "tonemap":
		method = compensate.ToneMapping
	default:
		fmt.Fprintf(os.Stderr, "player: unknown method %q\n", *methodName)
		os.Exit(2)
	}
	if *dumpDir != "" {
		exitOn(os.MkdirAll(*dumpDir, 0o755))
	}

	f, err := os.Open(*in)
	exitOn(err)
	defer f.Close()

	r, err := container.NewReader(f)
	exitOn(err)
	hdr := r.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	exitOn(err)

	model := power.DefaultModel(dev)
	led := power.NewLedgerModel(model)
	led.SetNetworkActive(false) // local file: no WNIC draw
	frameSeconds := 1 / float64(hdr.FPS)

	var cursor *annotation.Cursor
	if hdr.AnnotationsErr != nil {
		// Graceful degradation: a damaged annotation track must not
		// stop playback — log once and keep the backlight at full.
		fmt.Fprintf(os.Stderr, "player: annotation track damaged (%v); falling back to full backlight\n",
			hdr.AnnotationsErr)
	}
	if hdr.Annotations != nil {
		cursor = hdr.Annotations.NewCursor(hdr.Annotations.QualityIndex(*quality))
	}

	framesDecoded := reg.Counter("player_frames_decoded_total",
		"Frames decoded during playback.")
	backlightGauge := reg.Gauge("player_backlight_level",
		"Backlight level currently set (0..255).")

	level := display.MaxLevel
	target := 1.0
	frames, scenes := 0, 0
	var clippedSum float64
	for {
		ef, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		exitOn(err)
		sp := reg.StartSpan("player.decode")
		fr, err := dec.Decode(ef)
		sp.End()
		exitOn(err)
		if cursor != nil {
			t, sceneStart := cursor.Next()
			if sceneStart {
				target = t
				level = dev.LevelFor(target)
				backlightGauge.Set(float64(level))
				led.StartScene(scenes, level)
				scenes++
			}
		}
		if *doCompensate && target > 0 && target < 1 {
			sp := reg.StartSpan("player.compensate")
			plan := compensate.Plan{Target: target, K: 1 / target}
			clippedSum += plan.ClippedFraction(fr)
			plan.Apply(method, fr)
			sp.End()
		}
		framesDecoded.Inc()
		if *dumpDir != "" {
			out, err := os.Create(filepath.Join(*dumpDir, fmt.Sprintf("frame%05d.ppm", frames)))
			exitOn(err)
			exitOn(fr.WritePPM(out))
			exitOn(out.Close())
		}
		led.Frame(frameSeconds, level)
		frames++
	}
	if frames == 0 {
		fmt.Fprintln(os.Stderr, "player: empty stream")
		os.Exit(1)
	}
	if hdr.AnnotationsErr != nil {
		led.Degraded("annotations")
	}
	trace, ref := led.Traces()

	daq := power.DefaultDAQ()
	measured, err := daq.MeasuredSavings(model, ref, trace)
	exitOn(err)

	if *traceOut != "" {
		out, err := os.Create(*traceOut)
		exitOn(err)
		exitOn(model.WriteCSV(out, trace))
		exitOn(out.Close())
	}

	fmt.Printf("stream            %s: %d frames, %dx%d @ %d fps\n",
		*in, frames, hdr.W, hdr.H, hdr.FPS)
	switch {
	case hdr.Annotations != nil:
		fmt.Printf("annotations       %d scenes, %d bytes, quality %.0f%%\n",
			len(hdr.Annotations.Records), hdr.Annotations.Size(),
			hdr.Annotations.Quality[hdr.Annotations.QualityIndex(*quality)]*100)
	case hdr.AnnotationsErr != nil:
		fmt.Printf("annotations       damaged, ignored (backlight stays at full)\n")
	default:
		fmt.Printf("annotations       none (backlight stays at full)\n")
	}
	rep := led.Report()
	fmt.Printf("device            %s (%s panel, %s backlight)\n", dev.Name, dev.Panel, dev.Backlight)
	fmt.Printf("avg backlight     %.1f / 255 (%d switches)\n", rep.AvgLevel, rep.Switches)
	if *doCompensate {
		fmt.Printf("mean clipped      %.2f%% of pixels\n", 100*clippedSum/float64(frames))
	}
	fmt.Printf("backlight saving  %.1f%%\n", 100*model.BacklightSavings(ref, trace))
	fmt.Printf("total saving      %.1f%% analytic, %.1f%% DAQ-measured\n",
		100*model.Savings(ref, trace), 100*measured)
	fmt.Printf("battery life      %.2fh -> %.2fh on a %.1fWh pack\n",
		model.BatteryLifeHours(ref, *battery), model.BatteryLifeHours(trace, *battery), *battery)
	fmt.Println()
	fmt.Println(rep)
	rep.Emit(logger)
	rep.EmitMetrics(reg, "player")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "player:", err)
		os.Exit(1)
	}
}
