// Command fleetsim runs seeded fleet-scale load/power scenarios against
// a streamd cluster (booted in-process by default, or an external one
// via -addrs) and emits a machine-readable report: aggregate joules
// saved vs full backlight, rebuffer/stall and retry rates, shed and
// failover counts, quality-switch histograms, and TTFF / frame-gap
// latency quantiles — reconstructed from two agreeing sources, the
// clients' power ledgers and the servers' /metrics expositions.
//
// Usage:
//
//	fleetsim -list
//	fleetsim -scenario small-healthy [-seed 1] [-out report.json] [-check]
//	fleetsim -scenario all -bench | benchgate -baseline BENCH_fleet.json
//	fleetsim -scenario medium-lossy -runs 5 -check   # N-run CV validity gate
//
// The report's scenario/seed/core section is deterministic for a given
// (scenario, seed) — see EXPERIMENTS.md for the canonical matrix, the
// determinism scope, and the N>=5-run benchmarking policy.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/fleetsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "small-healthy", `canonical scenario name, or "all"`)
	seed := fs.Int64("seed", 1, "population seed (same scenario+seed = same session population)")
	runs := fs.Int("runs", 1, "independent runs (seeds seed..seed+runs-1); prints cross-run validity stats")
	out := fs.String("out", "", "write the full report(s) as JSON to this file")
	bench := fs.Bool("bench", false, "emit go-test-bench-shaped metric lines (benchgate input) on stdout")
	check := fs.Bool("check", false, "run the scenario's acceptance checks (and the CV gate with -runs >= 2); nonzero exit on violation")
	canonical := fs.Bool("canonical", false, "print the deterministic scenario/seed/core JSON instead of the human summary")
	addrs := fs.String("addrs", "", "comma-separated external streamd cluster addresses (default: boot an in-process cluster)")
	list := fs.Bool("list", false, "list canonical scenarios and exit")
	verbose := fs.Bool("v", false, "log fleet progress to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, sc := range fleetsim.Canonical() {
			fmt.Fprintf(stdout, "%-14s %4d sessions, %d nodes, adaptive %.0f%%, faults %q, kill-owner %.0f%%\n",
				sc.Name, sc.Sessions, sc.Nodes, sc.AdaptiveFrac*100, sc.Faults, sc.KillOwnerFrac*100)
		}
		return 0
	}

	var scenarios []fleetsim.Scenario
	if *scenario == "all" {
		scenarios = fleetsim.Canonical()
	} else {
		sc, err := fleetsim.ScenarioByName(*scenario)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 2
		}
		scenarios = []fleetsim.Scenario{sc}
	}

	opts := fleetsim.Options{Seed: *seed}
	if *addrs != "" {
		opts.Addrs = strings.Split(*addrs, ",")
	}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}

	exit := 0
	var all []*fleetsim.Report
	for _, sc := range scenarios {
		var reports []*fleetsim.Report
		for r := 0; r < max(1, *runs); r++ {
			o := opts
			o.Seed = *seed + int64(r)
			rep, err := fleetsim.Run(sc, o)
			if err != nil {
				fmt.Fprintln(stderr, "fleetsim:", err)
				return 1
			}
			reports = append(reports, rep)
		}
		all = append(all, reports...)
		rep := reports[0]

		switch {
		case *bench:
			fmt.Fprint(stdout, rep.BenchLines())
		case *canonical:
			j, err := rep.CanonicalJSON()
			if err != nil {
				fmt.Fprintln(stderr, "fleetsim:", err)
				return 1
			}
			fmt.Fprintf(stdout, "%s\n", j)
		default:
			fmt.Fprintln(stdout, rep)
		}
		if len(reports) > 1 {
			v := fleetsim.Aggregate(reports)
			fmt.Fprintf(stdout, "validity %s: %d runs, saved %.2f%% ± %.2f%% (CV %.4f)\n",
				sc.Name, v.Runs, v.MeanPct, v.StdevPct, v.CV)
			if *check && v.CV > 0.05 {
				fmt.Fprintf(stderr, "fleetsim: %s: CV %.4f exceeds the 0.05 validity gate\n", sc.Name, v.CV)
				exit = 1
			}
		}
		if *check {
			for i, r := range reports {
				for _, violation := range r.Check() {
					fmt.Fprintf(stderr, "fleetsim: %s (seed %d): CHECK FAILED: %s\n",
						sc.Name, *seed+int64(i), violation)
					exit = 1
				}
			}
			if exit == 0 {
				fmt.Fprintf(stdout, "check %s: ok (%d run(s))\n", sc.Name, len(reports))
			}
		}
	}

	if *out != "" {
		var raw []byte
		var err error
		if len(all) == 1 {
			raw, err = all[0].JSON()
		} else {
			raw, err = reportsJSON(all)
		}
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
	}
	return exit
}

// reportsJSON marshals several reports as one JSON array.
func reportsJSON(reports []*fleetsim.Report) ([]byte, error) {
	parts := make([]string, len(reports))
	for i, r := range reports {
		raw, err := r.JSON()
		if err != nil {
			return nil, err
		}
		parts[i] = string(raw)
	}
	return []byte("[\n" + strings.Join(parts, ",\n") + "\n]"), nil
}
