// Command experiments regenerates every figure of the paper's evaluation
// plus the ablation studies, printing each as a labelled text table.
//
// Usage:
//
//	experiments [-scale 0.15] [-w 80] [-h 60] [-fps 8] [-device ipaq5555] [-only fig9]
//
// -scale 1.0 reproduces the paper's full clip lengths (30s–3min each).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/display"
	"repro/internal/experiments"
	"repro/internal/video"
)

func main() {
	scale := flag.Float64("scale", 0.15, "clip duration scale (1.0 = paper length)")
	w := flag.Int("w", 80, "frame width")
	h := flag.Int("h", 60, "frame height")
	fps := flag.Int("fps", 8, "frames per second")
	deviceName := flag.String("device", "ipaq5555", "client device (ipaq3650, zaurus5600, ipaq5555)")
	only := flag.String("only", "", "run a single experiment (fig3..fig10, power, overhead, ablations)")
	flag.Parse()

	dev := display.ByName(*deviceName)
	if dev == nil {
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *deviceName)
		os.Exit(2)
	}
	opt := experiments.Options{
		Library: video.LibraryOptions{W: *w, H: *h, FPS: *fps, DurationScale: *scale},
		Device:  dev,
	}

	run := func(name string) bool { return *only == "" || *only == name }
	out := os.Stdout

	if run("fig3") {
		experiments.FprintFig3(out, experiments.Fig3(opt))
		fmt.Fprintln(out)
	}
	if run("fig4") {
		experiments.FprintFig4(out, experiments.Fig4(opt))
		fmt.Fprintln(out)
	}
	if run("fig5") {
		experiments.FprintFig5(out, experiments.Fig5(opt))
		fmt.Fprintln(out)
	}
	if run("fig6") {
		r, err := experiments.Fig6(opt, "")
		exitOn(err)
		experiments.FprintFig6(out, r)
		fmt.Fprintln(out)
	}
	if run("fig7") {
		experiments.FprintFig7(out, experiments.Fig7(nil))
		fmt.Fprintln(out)
	}
	if run("fig8") {
		experiments.FprintFig8(out, dev.Name, experiments.Fig8(dev, nil))
		fmt.Fprintln(out)
	}
	if run("fig9") || run("fig10") || run("overhead") {
		rows, err := experiments.Sweep(opt)
		exitOn(err)
		if run("fig9") {
			experiments.FprintFig9(out, rows)
			fmt.Fprintln(out)
		}
		if run("fig10") {
			experiments.FprintFig10(out, rows)
			fmt.Fprintln(out)
		}
		if run("overhead") {
			experiments.FprintOverhead(out, rows)
			fmt.Fprintln(out)
		}
	}
	if run("power") {
		experiments.FprintPowerBreakdown(out)
		fmt.Fprintln(out)
	}
	if run("quality") {
		rows, err := experiments.QualityMetrics(opt, "", 4)
		exitOn(err)
		experiments.FprintQuality(out, "themovie", rows)
		fmt.Fprintln(out)
	}
	if run("dvs") {
		rows, err := experiments.DVSRows(opt, "")
		exitOn(err)
		experiments.FprintDVS(out, "i_robot", rows)
		fmt.Fprintln(out)
	}
	if run("network") {
		rows, err := experiments.NetworkRows(opt, "")
		exitOn(err)
		experiments.FprintNetwork(out, "returnoftheking", rows)
		fmt.Fprintln(out)
	}
	if run("battery") {
		rows, err := experiments.BatteryRows(opt, "")
		exitOn(err)
		experiments.FprintBattery(out, "catwoman", rows)
		fmt.Fprintln(out)
	}
	if run("adaptive") {
		rows, err := experiments.AdaptiveRows(opt, 3)
		exitOn(err)
		experiments.FprintAdaptive(out, rows)
		fmt.Fprintln(out)
	}
	if run("credits") {
		rows, err := experiments.CreditsRows(opt)
		exitOn(err)
		experiments.FprintCredits(out, rows)
		fmt.Fprintln(out)
	}
	if run("ablations") {
		th, err := experiments.AblateThresholds(opt, "")
		exitOn(err)
		experiments.FprintThresholds(out, th)
		fmt.Fprintln(out)

		gr, err := experiments.AblateGranularity(opt, "")
		exitOn(err)
		experiments.FprintGranularity(out, gr)
		fmt.Fprintln(out)

		bl, err := experiments.Baselines(opt, "", 0.10)
		exitOn(err)
		experiments.FprintBaselines(out, 0.10, bl)
		fmt.Fprintln(out)

		tr, err := experiments.AblateTransferAwareness(opt, "")
		exitOn(err)
		experiments.FprintTransfer(out, tr)
		fmt.Fprintln(out)

		experiments.FprintMethods(out, experiments.AblateCompensationMethod(opt))
		fmt.Fprintln(out)

		det, err := experiments.AblateDetectors(opt, "")
		exitOn(err)
		experiments.FprintDetectors(out, "returnoftheking", det)
		fmt.Fprintln(out)

		hw, err := experiments.AblateHardwareSteps(opt, "")
		exitOn(err)
		experiments.FprintHardware(out, hw)
		fmt.Fprintln(out)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
