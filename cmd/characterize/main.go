// Command characterize reproduces the paper's display-characterisation
// flow (§5): solid gray frames are shown on each device and photographed
// with the (simulated) digital camera, producing the backlight→brightness
// curve of Figure 7 and the white-level→brightness curves of Figure 8. It
// can also run the Figure 2/4 compensation-validation flow on a sample
// frame.
//
// Usage:
//
//	characterize [-device ipaq5555] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/display"
	"repro/internal/experiments"
)

func main() {
	deviceName := flag.String("device", "ipaq5555", "device for the Figure 8 sweep")
	validate := flag.Bool("validate", false, "also run the camera compensation validation (Figure 4)")
	fit := flag.Bool("fit", false, "fit transfer-curve parameters back from the measurements")
	flag.Parse()

	dev := display.ByName(*deviceName)
	if dev == nil {
		fmt.Fprintf(os.Stderr, "characterize: unknown device %q\n", *deviceName)
		os.Exit(2)
	}

	fmt.Printf("devices under characterisation:\n")
	for _, d := range display.Devices() {
		fmt.Printf("  %-12s %-14s panel, %-5s backlight, min level %d\n",
			d.Name, d.Panel, d.Backlight, d.MinLevel)
	}
	fmt.Println()

	experiments.FprintFig7(os.Stdout, experiments.Fig7(nil))
	fmt.Println()
	experiments.FprintFig8(os.Stdout, dev.Name, experiments.Fig8(dev, nil))
	fmt.Println()

	if *fit {
		fmt.Println("fitting transfer curves from the measurement sweeps:")
		for _, d := range display.Devices() {
			samples := d.CalibrationSamples(24)
			fitted, rmse, err := display.FitTransfer(d.Name, samples, display.FitOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "characterize:", err)
				os.Exit(1)
			}
			fmt.Printf("  %-12s floor=%.3f gamma=%.2f knee=%.2f (RMSE %.4f; true: %.3f/%.2f/%.2f)\n",
				d.Name, fitted.ReflectiveFloor, fitted.ResponseGamma, fitted.ResponseKnee,
				rmse, d.ReflectiveFloor, d.ResponseGamma, d.ResponseKnee)
		}
		fmt.Println()
	}

	if *validate {
		opt := experiments.Default()
		opt.Device = dev
		experiments.FprintFig4(os.Stdout, experiments.Fig4(opt))
	}
}
