// Command annotate performs the paper's offline analysis step: it renders
// a library clip, profiles its scenes, and writes an annotated container
// stream (.avs) whose header carries the RLE-compressed annotation track.
//
// Usage:
//
//	annotate -clip returnoftheking -o rotk.avs [-w 120 -h 90 -fps 10]
//	         [-scale 0.25] [-gop 10] [-qscale 4] [-threshold 0.10]
//	         [-workers N] [-store-dir /var/lib/streamd]
//	annotate -i footage.y4m -o footage.avs     # annotate real footage
//	annotate -list
//
// Output files are written atomically (temp + fsync + rename), so an
// interrupted run never leaves a torn .avs behind. With -store-dir the
// computed annotation track is also written into the persistent
// artifact store (see internal/annstore) under the clip's content
// digest — the same key a streaming server uses — so an offline
// annotation run pre-warms the serving tier.
//
// Real footage is accepted as C444 YUV4MPEG2 (produce it with
// `ffmpeg -i in.mp4 -pix_fmt yuv444p -f yuv4mpegpipe footage.y4m`).
// Frames are stored uncompensated; the player (or a streaming server)
// applies compensation for the quality level negotiated at playback time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/annstore"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scene"
	"repro/internal/video"
)

func main() {
	clipName := flag.String("clip", "", "library clip to annotate")
	input := flag.String("i", "", "annotate a C444 YUV4MPEG2 file instead of a library clip")
	list := flag.Bool("list", false, "list library clips and exit")
	out := flag.String("o", "", "output .avs path")
	w := flag.Int("w", 120, "frame width")
	h := flag.Int("h", 90, "frame height")
	fps := flag.Int("fps", 10, "frames per second")
	scale := flag.Float64("scale", 0.25, "clip duration scale (1.0 = paper length)")
	gop := flag.Int("gop", 0, "I-frame interval (default: one second)")
	qscale := flag.Int("qscale", 4, "codec quantiser scale (1..31)")
	threshold := flag.Float64("threshold", 0.10, "scene-change threshold (fraction of full scale)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "annotation pipeline workers (<=1 = sequential)")
	storeDir := flag.String("store-dir", "", "also write the annotation track into this persistent artifact store (pre-warms a server's -store-dir)")
	y4mOut := flag.String("y4m", "", "also export the raw clip as YUV4MPEG2 to this path (viewable with mpv/ffplay)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address while annotating")
	flag.Parse()

	ctx := context.Background()
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		ds, err := obs.ServeDebug(*debugAddr, reg)
		exitOn(err)
		defer ds.Close()
		ctx = obs.WithRegistry(ctx, reg)
		fmt.Printf("debug endpoint on http://%s/metrics\n", ds.Addr())
	}

	if *list {
		for _, name := range video.ClipNames() {
			fmt.Println(name)
		}
		return
	}
	if (*clipName == "" && *input == "") || *out == "" {
		fmt.Fprintln(os.Stderr, "annotate: -o plus one of -clip or -i are required (or -list)")
		os.Exit(2)
	}

	var src core.Source
	var name string
	if *input != "" {
		in, err := os.Open(*input)
		exitOn(err)
		y4m, err := video.ReadY4M(in)
		in.Close()
		exitOn(err)
		src = y4m
		name = *input
	} else {
		opt := video.LibraryOptions{W: *w, H: *h, FPS: *fps, DurationScale: *scale}
		clip := video.ClipByName(*clipName, opt)
		if clip == nil {
			fmt.Fprintf(os.Stderr, "annotate: unknown clip %q (try -list)\n", *clipName)
			os.Exit(2)
		}
		src = core.ClipSource{Clip: clip}
		name = clip.Name
	}
	width, height := src.Size()

	if *y4mOut != "" {
		yf, err := annstore.CreateAtomic(*y4mOut)
		exitOn(err)
		exitOn(video.WriteY4M(yf, src))
		exitOn(yf.Commit())
		fmt.Printf("exported       %s (YUV4MPEG2)\n", *y4mOut)
	}

	cfg := scene.DefaultConfig(src.FPS())
	cfg.Threshold = *threshold
	track, scenes, err := core.AnnotatePipeline(ctx, src, cfg, nil,
		core.AnnotateOptions{Workers: *workers})
	exitOn(err)

	// The container is written through an atomic file: a crash or kill
	// mid-encode leaves the previous *out (or nothing), never a torn
	// stream a player would choke on.
	f, err := annstore.CreateAtomic(*out)
	exitOn(err)
	defer f.Abort()

	cw, err := container.NewWriter(f, container.Header{
		W: width, H: height, FPS: src.FPS(),
		FrameCount:  src.TotalFrames(),
		Annotations: track,
	})
	exitOn(err)

	gopLen := *gop
	if gopLen <= 0 {
		gopLen = src.FPS()
	}
	enc, err := codec.NewEncoder(width, height, gopLen, *qscale)
	exitOn(err)

	encSpan := obs.StartSpan(ctx, "annotate.encode")
	var bytes int
	for i := 0; i < src.TotalFrames(); i++ {
		ef, err := enc.Encode(src.Frame(i))
		exitOn(err)
		exitOn(cw.WriteFrame(ef))
		bytes += ef.Size()
	}
	encSpan.End()
	exitOn(f.Commit())

	if *storeDir != "" {
		st, err := annstore.Open(*storeDir, annstore.Options{})
		exitOn(err)
		dg := core.SourceDigest(src)
		exitOn(st.Put(annstore.Key{Kind: "track", Digest: dg, Quality: -1}, track.Encode()))
		exitOn(st.Close())
		fmt.Printf("store          pre-warmed track %s in %s\n", dg, *storeDir)
	}

	fmt.Printf("clip          %s (%dx%d @ %d fps, %.1fs)\n",
		name, width, height, src.FPS(), float64(src.TotalFrames())/float64(src.FPS()))
	fmt.Printf("frames        %d (%d scenes detected)\n", src.TotalFrames(), len(scenes))
	fmt.Printf("video bytes   %d\n", bytes)
	fmt.Printf("annotation    %d bytes (%.3f%% overhead)\n",
		track.Size(), 100*float64(track.Size())/float64(bytes))
	fmt.Printf("wrote         %s\n", *out)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "annotate:", err)
		os.Exit(1)
	}
}
