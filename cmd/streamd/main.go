// Command streamd runs the annotating media server of the paper's system
// model (Figure 1), serving the synthetic clip library over TCP. Clients
// negotiate a clip, quality level and device; the server replies with a
// compensated, annotated stream carrying all three side channels
// (luminance targets, decode cycles, scene bytes).
//
// Usage:
//
//	streamd [-addr 127.0.0.1:7400] [-proxy-of upstream:port]
//	        [-upstreams a:port,b:port] [-drain-timeout 15s]
//	        [-peers a:port,b:port] [-advertise host:port]
//	        [-debug-addr :7401] [-w 120 -h 90 -fps 10 -scale 0.25]
//	        [-max-sessions 0] [-workers N] [-cache-size MiB]
//	        [-store-dir /var/lib/streamd] [-store-size MiB]
//	        [-trace-dir /var/log/streamd] [-log-level info]
//	        [-max-protocol 0]
//	        [-faults latency=2ms,reset=65536,repeat,seed=7]
//	streamd -store-dir /var/lib/streamd -fsck
//
// With -proxy-of (or -upstreams, a comma-separated failover list) the
// process runs as the intermediary proxy node instead, pulling raw
// streams from the upstream servers — each guarded by a circuit breaker —
// and annotating on the fly. With -peers the node joins a sharded
// serving cluster: artifact ownership is rendezvous-hashed across self
// plus the peer list, local misses fill from the shard owner over the
// internal fetch-artifact RPC before falling back to local compute, and
// the same listener answers peer fetches. Both address lists are
// validated at startup — duplicates or the node's own listen address
// exit with status 2. With -debug-addr the process serves its
// telemetry over HTTP: /metrics (Prometheus text format, including Go
// runtime health), /healthz (liveness), /readyz (readiness — not-ready
// while draining or with every upstream breaker open), /debug/vars,
// /debug/pprof, /debug/spans and /debug/traces (completed trace trees
// as JSON, ?min=duration to filter). With -trace-dir every sampled
// trace span is additionally appended to a per-process JSONL file in
// that directory as it completes, so traces survive the process.
//
// Operational logging goes through the leveled key=value logger on
// stderr; -log-level sets the threshold (debug, info, warn, error).
//
// With -store-dir the process keeps a persistent, crash-safe artifact
// store (see internal/annstore) under the in-memory cache: annotation
// tracks, encoded variants and device level tables survive restarts, so
// a drained or crashed process comes back warm instead of recomputing
// the fleet's artifacts. -store-size bounds it (LRU eviction). With
// -fsck the process instead verifies every stored artifact end to end,
// quarantines anything corrupt, prints a report and exits — non-zero
// when corruption was found.
//
// With -faults every accepted connection is wrapped in the deterministic
// fault injector (see internal/faults): added latency, bandwidth
// throttling, fragmented writes, scheduled mid-stream resets and byte
// corruption — a live chaos mode for exercising client resilience. With
// -max-sessions the server admits up to the cap and queues a bounded
// number of further sessions briefly before shedding them with a clean
// over-capacity error that resilient clients back off and retry on.
//
// On SIGTERM/SIGINT the process drains: it stops accepting (and /readyz
// flips not-ready immediately), lets in-flight streams finish up to
// -drain-timeout, then force-closes whatever remains. A second signal
// forces immediately. Exit status is 0 for a clean drain, 1 if sessions
// had to be cut.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/annstore"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "listen address")
	proxyOf := flag.String("proxy-of", "", "run as a proxy for this upstream server")
	upstreams := flag.String("upstreams", "", "run as a proxy for these comma-separated upstreams in failover order")
	peers := flag.String("peers", "", "join a sharded serving cluster with these comma-separated peer addresses (artifact ownership is rendezvous-hashed across self + peers)")
	advertise := flag.String("advertise", "", "address peers reach this node at (defaults to -addr)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max time to let in-flight sessions finish on SIGTERM/SIGINT")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address")
	w := flag.Int("w", 120, "frame width")
	h := flag.Int("h", 90, "frame height")
	fps := flag.Int("fps", 10, "frames per second")
	scale := flag.Float64("scale", 0.25, "clip duration scale")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions (0 = unlimited)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "annotation pipeline workers (<=1 = sequential)")
	cacheSize := flag.Int64("cache-size", 256, "annotated-artifact cache budget in MiB (0 = unlimited)")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory (empty = memory-only)")
	storeSize := flag.Int64("store-size", 1024, "persistent store byte budget in MiB (0 = unlimited)")
	fsck := flag.Bool("fsck", false, "verify the -store-dir store, quarantine corrupt entries, report and exit (non-zero on corruption)")
	maxProto := flag.Int("max-protocol", 0, "answer requests above this protocol version with a bad-request error, like an older server would (0 = newest)")
	faultSpec := flag.String("faults", "", "inject faults into accepted connections (e.g. latency=2ms,bw=65536,short,corrupt=0.001,reset=65536,repeat,seed=7)")
	traceDir := flag.String("trace-dir", "", "append completed trace spans as JSONL to a per-process file in this directory")
	logLevel := flag.String("log-level", "info", "log threshold (debug, info, warn, error)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, lvl)

	if *fsck {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "streamd: -fsck requires -store-dir")
			os.Exit(2)
		}
		runFsck(*storeDir, *storeSize)
		return
	}

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var reg *obs.Registry
	if *debugAddr != "" || *traceDir != "" {
		reg = obs.NewRegistry()
	}
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, reg)
		exitOn(err)
		defer ds.Close()
		fmt.Printf("debug endpoint on http://%s/metrics\n", ds.Addr())
	}
	if *traceDir != "" {
		exitOn(os.MkdirAll(*traceDir, 0o755))
		tf, err := os.Create(filepath.Join(*traceDir,
			fmt.Sprintf("streamd-%d.traces.jsonl", os.Getpid())))
		exitOn(err)
		defer tf.Close()
		reg.SetTraceWriter(tf)
		logger.Info("trace_export", "path", tf.Name())
	}

	faultCfg, err := faults.ParseConfig(*faultSpec)
	exitOn(err)
	listen := func() (net.Listener, error) {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return nil, err
		}
		if faultCfg.Enabled() {
			logger.Warn("chaos_mode", "faults", faultCfg.String())
			ln = faults.WrapListener(ln, faultCfg)
		}
		return ln, nil
	}

	// drain runs the graceful-shutdown protocol shared by both roles:
	// stop accepting, let in-flight sessions finish within the drain
	// timeout, force-close on timeout or a second signal.
	drain := func(shutdown func(context.Context) error) {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-stop // second signal: force immediately
			cancel()
		}()
		logger.Info("draining", "timeout", drainTimeout.String())
		if err := shutdown(ctx); err != nil {
			logger.Error("forced_shutdown", "err", err.Error())
			os.Exit(1)
		}
		logger.Info("drained")
	}

	// openStore opens the persistent artifact tier when -store-dir is
	// set; the Open-time scan quarantines anything a crash tore.
	openStore := func(role string) *annstore.Store {
		if *storeDir == "" {
			return nil
		}
		st, err := annstore.Open(*storeDir, annstore.Options{
			MaxBytes: *storeSize << 20,
			Logf:     logger.Printf,
		})
		exitOn(err)
		if reg != nil {
			st.SetObserver(reg, obs.L("role", role))
		}
		if rep := st.OpenReport(); rep.Quarantined > 0 || rep.Adopted > 0 {
			logger.Warn("store_recovery", "report", rep.String())
		}
		logger.Info("store_open", "dir", *storeDir,
			"artifacts", st.Len(), "bytes", st.Bytes())
		return st
	}

	// Address-list hygiene, before any socket opens: a node proxying to
	// itself or sharding to a double-weighted member is a config error,
	// not a runtime condition, so both lists fail fast with exit 2.
	selfAddr := *advertise
	if selfAddr == "" {
		selfAddr = *addr
	}
	upstreamList := *upstreams
	if upstreamList == "" {
		upstreamList = *proxyOf
	}
	var upstreamAddrs []string
	if upstreamList != "" {
		upstreamAddrs, err = cluster.ValidateMembers(*addr, strings.Split(upstreamList, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamd: -upstreams:", err)
			os.Exit(2)
		}
		if len(upstreamAddrs) == 0 {
			fmt.Fprintln(os.Stderr, "streamd: -upstreams: no usable addresses")
			os.Exit(2)
		}
	}
	var cnode *cluster.Node
	if *peers != "" {
		cnode, err = cluster.New(cluster.Config{
			Self:       selfAddr,
			Peers:      strings.Split(*peers, ","),
			ProbeEvery: 500 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamd: -peers:", err)
			os.Exit(2)
		}
		if *advertise == "" {
			// Routing hashes the advertised address; a wildcard listen
			// address is fine for the socket but meaningless to peers.
			if host, _, _ := net.SplitHostPort(selfAddr); host == "" || host == "0.0.0.0" || host == "::" {
				fmt.Fprintln(os.Stderr, "streamd: -peers with a wildcard -addr requires -advertise")
				os.Exit(2)
			}
		}
		logger.Info("cluster_join", "self", selfAddr,
			"peers", strings.Join(cnode.Members()[1:], ","))
	}

	if upstreamList != "" {
		p := stream.NewProxy(upstreamAddrs...)
		p.SetLogf(logger.Printf)
		p.SetCluster(cnode)
		p.SetAnnotateWorkers(*workers)
		p.SetCacheCapacity(*cacheSize << 20)
		if st := openStore("proxy"); st != nil {
			p.SetStore(st)
			defer st.Close()
		}
		p.SetObserver(reg)
		reg.RegisterReadiness("proxy", p.Ready)
		ln, err := listen()
		exitOn(err)
		p.Serve(ln)
		fmt.Printf("proxy listening on %s (upstreams %s)\n",
			ln.Addr(), strings.Join(p.UpstreamAddrs(), ","))
		<-stop
		drain(p.Shutdown)
		return
	}

	opt := video.LibraryOptions{W: *w, H: *h, FPS: *fps, DurationScale: *scale}
	catalog := map[string]core.Source{}
	for _, name := range video.ClipNames() {
		catalog[name] = core.ClipSource{Clip: video.ClipByName(name, opt)}
	}
	s := stream.NewServer(catalog)
	s.SetLogf(logger.Printf)
	s.SetCluster(cnode)
	s.SetAnnotateWorkers(*workers)
	s.SetCacheCapacity(*cacheSize << 20)
	if st := openStore("server"); st != nil {
		s.SetStore(st)
		defer st.Close()
	}
	s.SetObserver(reg)
	s.SetMaxSessions(*maxSessions)
	s.SetMaxProtocolVersion(*maxProto)
	reg.RegisterReadiness("server", s.Ready)
	ln, err := listen()
	exitOn(err)
	s.Serve(ln)
	fmt.Printf("serving %d clips on %s\n", len(catalog), ln.Addr())
	for _, name := range video.ClipNames() {
		fmt.Printf("  %s\n", name)
	}
	<-stop
	drain(s.Shutdown)
}

// runFsck is the offline store-verification mode: open (the fast scan
// already quarantines torn entries), then fully verify every artifact.
// Exit status 1 means something was quarantined — by this run's scan or
// by the exhaustive pass.
func runFsck(dir string, sizeMiB int64) {
	st, err := annstore.Open(dir, annstore.Options{
		MaxBytes: sizeMiB << 20,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	exitOn(err)
	rep, err := st.Fsck()
	exitOn(err)
	if or := st.OpenReport(); or.Quarantined > 0 || or.Adopted > 0 || or.TmpRemoved > 0 {
		fmt.Printf("open scan: %s\n", or)
	}
	fmt.Printf("fsck: %s\n", rep)
	exitOn(st.Close())
	if st.Quarantined() > 0 {
		fmt.Fprintln(os.Stderr, "streamd: store corruption found (entries quarantined)")
		os.Exit(1)
	}
	fmt.Println("store is clean")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamd:", err)
		os.Exit(1)
	}
}
