// Command streamd runs the annotating media server of the paper's system
// model (Figure 1), serving the synthetic clip library over TCP. Clients
// negotiate a clip, quality level and device; the server replies with a
// compensated, annotated stream carrying all three side channels
// (luminance targets, decode cycles, scene bytes).
//
// Usage:
//
//	streamd [-addr 127.0.0.1:7400] [-proxy-of upstream:port]
//	        [-debug-addr :7401] [-w 120 -h 90 -fps 10 -scale 0.25]
//	        [-max-sessions 0] [-workers N] [-cache-size MiB]
//	        [-faults latency=2ms,reset=65536,repeat,seed=7]
//
// With -proxy-of the process runs as the intermediary proxy node instead,
// pulling raw streams from the upstream server and annotating on the fly.
// With -debug-addr the process serves its telemetry over HTTP: /metrics
// (Prometheus text format), /healthz, /debug/vars, /debug/pprof and
// /debug/spans.
//
// With -faults every accepted connection is wrapped in the deterministic
// fault injector (see internal/faults): added latency, bandwidth
// throttling, fragmented writes, scheduled mid-stream resets and byte
// corruption — a live chaos mode for exercising client resilience. With
// -max-sessions the server refuses connections over the cap with a clean
// over-capacity error that resilient clients back off and retry on.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "listen address")
	proxyOf := flag.String("proxy-of", "", "run as a proxy for this upstream server")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
	w := flag.Int("w", 120, "frame width")
	h := flag.Int("h", 90, "frame height")
	fps := flag.Int("fps", 10, "frames per second")
	scale := flag.Float64("scale", 0.25, "clip duration scale")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions (0 = unlimited)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "annotation pipeline workers (<=1 = sequential)")
	cacheSize := flag.Int64("cache-size", 256, "annotated-artifact cache budget in MiB (0 = unlimited)")
	faultSpec := flag.String("faults", "", "inject faults into accepted connections (e.g. latency=2ms,bw=65536,short,corrupt=0.001,reset=65536,repeat,seed=7)")
	flag.Parse()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		ds, err := obs.ServeDebug(*debugAddr, reg)
		exitOn(err)
		defer ds.Close()
		fmt.Printf("debug endpoint on http://%s/metrics\n", ds.Addr())
	}

	faultCfg, err := faults.ParseConfig(*faultSpec)
	exitOn(err)
	listen := func() (net.Listener, error) {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return nil, err
		}
		if faultCfg.Enabled() {
			fmt.Printf("chaos mode: injecting %s\n", faultCfg)
			ln = faults.WrapListener(ln, faultCfg)
		}
		return ln, nil
	}

	if *proxyOf != "" {
		p := stream.NewProxy(*proxyOf)
		p.SetAnnotateWorkers(*workers)
		p.SetCacheCapacity(*cacheSize << 20)
		p.SetObserver(reg)
		ln, err := listen()
		exitOn(err)
		p.Serve(ln)
		fmt.Printf("proxy listening on %s (upstream %s)\n", ln.Addr(), *proxyOf)
		<-stop
		p.Close()
		return
	}

	opt := video.LibraryOptions{W: *w, H: *h, FPS: *fps, DurationScale: *scale}
	catalog := map[string]core.Source{}
	for _, name := range video.ClipNames() {
		catalog[name] = core.ClipSource{Clip: video.ClipByName(name, opt)}
	}
	s := stream.NewServer(catalog)
	s.SetAnnotateWorkers(*workers)
	s.SetCacheCapacity(*cacheSize << 20)
	s.SetObserver(reg)
	s.SetMaxSessions(*maxSessions)
	ln, err := listen()
	exitOn(err)
	s.Serve(ln)
	fmt.Printf("serving %d clips on %s\n", len(catalog), ln.Addr())
	for _, name := range video.ClipNames() {
		fmt.Printf("  %s\n", name)
	}
	<-stop
	s.Close()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamd:", err)
		os.Exit(1)
	}
}
