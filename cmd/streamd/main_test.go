package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/annstore"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/stream"
)

// TestDrainOnSIGTERM is the end-to-end shutdown smoke test: streamd is
// built and started, a client opens a stream, SIGTERM lands mid-stream,
// /readyz flips not-ready immediately, the in-flight stream completes,
// and the process exits 0 after logging the drained event.
func TestDrainOnSIGTERM(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "streamd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Server-side bandwidth throttle keeps the session genuinely in
	// flight when the signal arrives.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
		"-w", "32", "-h", "24", "-fps", "8", "-scale", "0.25",
		"-drain-timeout", "30s", "-faults", "bw=262144")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	// Collect stdout lines as they arrive.
	var outMu sync.Mutex
	var lines []string
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			outMu.Lock()
			lines = append(lines, sc.Text())
			outMu.Unlock()
		}
	}()
	// waitLine returns the first line for which match returns a non-empty
	// string.
	waitLine := func(what string, match func(string) string) string {
		deadline := time.Now().Add(15 * time.Second)
		for {
			outMu.Lock()
			for _, l := range lines {
				if got := match(l); got != "" {
					outMu.Unlock()
					return got
				}
			}
			outMu.Unlock()
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s in streamd output: %v", what, lines)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	debugAddr := waitLine("debug endpoint", func(l string) string {
		if rest, ok := strings.CutPrefix(l, "debug endpoint on http://"); ok {
			return strings.TrimSuffix(rest, "/metrics")
		}
		return ""
	})
	addr := waitLine("serve address", func(l string) string {
		if strings.HasPrefix(l, "serving ") {
			f := strings.Fields(l)
			return f[len(f)-1]
		}
		return ""
	})
	clip := waitLine("a clip name", func(l string) string {
		if strings.HasPrefix(l, "  ") {
			return strings.TrimSpace(l)
		}
		return ""
	})

	// Before the signal the process reports ready.
	resp, err := http.Get("http://" + debugAddr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz = %d before shutdown, want 200", resp.StatusCode)
	}

	firstFrame := make(chan struct{})
	var once sync.Once
	client := &stream.Client{Device: display.IPAQ5555()}
	client.OnFrame = func(int, *frame.Frame, int) { once.Do(func() { close(firstFrame) }) }
	type playOut struct {
		res *stream.PlayResult
		err error
	}
	playCh := make(chan playOut, 1)
	go func() {
		res, err := client.Play(addr, clip, 0.10)
		playCh <- playOut{res, err}
	}()

	select {
	case <-firstFrame:
	case out := <-playCh:
		t.Fatalf("stream ended before the signal could land mid-stream: %+v %v", out.res, out.err)
	case <-time.After(15 * time.Second):
		t.Fatal("no frame arrived")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Readiness flips not-ready immediately, while the stream drains.
	flipDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + debugAddr + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
		}
		if time.Now().After(flipDeadline) {
			t.Fatal("/readyz never flipped to 503 after SIGTERM")
		}
		time.Sleep(20 * time.Millisecond)
	}

	out := <-playCh
	if out.err != nil {
		t.Fatalf("in-flight stream failed during drain: %v", out.err)
	}
	if out.res.Frames == 0 {
		t.Fatal("drained stream delivered no frames")
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("streamd exited with %v, want 0 after a clean drain", err)
	}
	<-scanDone
	outMu.Lock()
	all := strings.Join(lines, "\n")
	outMu.Unlock()
	if !strings.Contains(all, "msg=drained") {
		t.Errorf("output missing %q:\n%s", "msg=drained", all)
	}
}

// TestAddressListValidation is the startup-hygiene regression: a node
// configured to proxy to itself, to a double-weighted upstream, or to
// shard with a malformed peer list must refuse to start with exit 2
// and a diagnostic — never open a socket and route traffic in a loop.
func TestAddressListValidation(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "streamd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "duplicate upstream",
			args: []string{"-addr", "127.0.0.1:7500", "-upstreams", "127.0.0.1:7501,127.0.0.1:7501"},
			want: "duplicate address",
		},
		{
			name: "duplicate upstream via localhost alias",
			args: []string{"-addr", "127.0.0.1:7500", "-upstreams", "localhost:7501,127.0.0.1:7501"},
			want: "duplicate address",
		},
		{
			name: "proxying to own listen address",
			args: []string{"-addr", "127.0.0.1:7500", "-upstreams", "127.0.0.1:7500"},
			want: "own listen address",
		},
		{
			name: "peer list contains self",
			args: []string{"-addr", "127.0.0.1:7500", "-peers", "localhost:7500,127.0.0.1:7501"},
			want: "own listen address",
		},
		{
			name: "duplicate peer",
			args: []string{"-addr", "127.0.0.1:7500", "-peers", "127.0.0.1:7501,127.0.0.1:7501"},
			want: "duplicate address",
		},
		{
			name: "peer is not host:port",
			args: []string{"-addr", "127.0.0.1:7500", "-peers", "not-an-address"},
			want: "not host:port",
		},
		{
			name: "wildcard addr with peers but no advertise",
			args: []string{"-addr", ":7500", "-peers", "127.0.0.1:7501"},
			want: "requires -advertise",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected a validation exit, got err=%v, output:\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("exit %d, want 2; output:\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}

	// The sanity inverse: a clean peer list with -advertise starts up
	// (and a clean duplicate-free upstream list is covered by
	// TestDrainOnSIGTERM's normal startup).
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0",
		"-advertise", "127.0.0.1:7600", "-peers", "127.0.0.1:7601")
	buf := &lockedBuffer{}
	cmd.Stdout = buf
	cmd.Stderr = buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(buf.String(), "serving ") {
		if time.Now().After(deadline) {
			t.Fatalf("clustered node never started serving:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "cluster_join") {
		t.Errorf("startup log missing cluster_join event:\n%s", buf.String())
	}
}

// lockedBuffer collects subprocess output written from the exec
// package's copier goroutine while the test polls it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFsckMode is the end-to-end check of `streamd -fsck`: a clean store
// exits 0, a store with a corrupted artifact exits 1 while quarantining
// it, and a second run over the now-repaired store exits 0 again.
func TestFsckMode(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "streamd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dir := t.TempDir()
	st, err := annstore.Open(dir, annstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Put(annstore.Key{Kind: "track", Digest: fmt.Sprintf("fsck%d", i)},
			bytes.Repeat([]byte{byte(i)}, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	run := func() (string, int) {
		out, err := exec.Command(bin, "-store-dir", dir, "-fsck").CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running fsck: %v\n%s", err, out)
		}
		return string(out), code
	}

	if out, code := run(); code != 0 || !strings.Contains(out, "store is clean") {
		t.Fatalf("fsck on clean store: exit %d, output:\n%s", code, out)
	}

	// Corrupt one artifact's payload on disk.
	des, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".art") {
			continue
		}
		path := filepath.Join(dir, "objects", de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no artifacts on disk to corrupt")
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("fsck on corrupt store: exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "quarantin") {
		t.Fatalf("fsck output does not mention quarantine:\n%s", out)
	}

	// The corrupt entry is now quarantined, so a re-run is clean.
	if out, code := run(); code != 0 {
		t.Fatalf("fsck after quarantine: exit %d, output:\n%s", code, out)
	}

	// And the quarantined file was preserved for inspection, not deleted.
	qdes, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qdes) == 0 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qdes), err)
	}
}
