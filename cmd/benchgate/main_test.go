package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline marshals a baseline to a temp file and returns its path.
func writeBaseline(t *testing.T, b baseline) string {
	t.Helper()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// calibrated returns a baseline with a calibration kernel at 100 ns/op
// and one tracked throughput entry.
func calibrated(entries ...entry) baseline {
	var b baseline
	b.Calibration.Bench = "BenchmarkDCT8x8"
	b.Calibration.Unit = "ns/op"
	b.Calibration.Value = 100
	b.Tolerance = 0.10
	b.Entries = entries
	return b
}

func gate(t *testing.T, b baseline, input string) (code int, stdout, stderr string, path string) {
	t.Helper()
	path = writeBaseline(t, b)
	var out, errb strings.Builder
	code = run([]string{"-baseline", path}, strings.NewReader(input), &out, &errb)
	return code, out.String(), errb.String(), path
}

// TestGateMissingBaselineKeyFails pins the contract the fleet baseline
// relies on: a benchmark key present in the baseline but absent from
// the measured run must fail the gate with a diagnostic naming the
// missing key — a deleted benchmark must not shrink coverage silently.
func TestGateMissingBaselineKeyFails(t *testing.T) {
	b := calibrated(
		entry{Bench: "BenchmarkWarmServe", Unit: "frames/s", Value: 1000, HigherIsBetter: true, Normalize: true},
		entry{Bench: "BenchmarkDeleted", Unit: "frames/s", Value: 500, HigherIsBetter: true},
	)
	input := "BenchmarkDCT8x8-8 1000 100 ns/op\n" +
		"BenchmarkWarmServe-8 10 1050 frames/s\n"
	code, stdout, stderr, _ := gate(t, b, input)
	if code == 0 {
		t.Fatal("gate passed with a baseline key missing from the run")
	}
	if !strings.Contains(stdout, "FAIL BenchmarkDeleted") {
		t.Errorf("missing key not reported as FAIL:\n%s", stdout)
	}
	if !strings.Contains(stderr, "BenchmarkDeleted (frames/s)") ||
		!strings.Contains(stderr, "missing from the measured run") {
		t.Errorf("diagnostic does not name the missing key:\n%s", stderr)
	}
	// The surviving benchmark was fine — the failure is the missing key.
	if !strings.Contains(stdout, "ok   BenchmarkWarmServe") {
		t.Errorf("healthy entry misreported:\n%s", stdout)
	}
}

// TestGateMissingUnitFails: the bench ran but the tracked unit (e.g.
// allocs/op after -benchmem was dropped) is absent — same hard failure.
func TestGateMissingUnitFails(t *testing.T) {
	b := calibrated(
		entry{Bench: "BenchmarkWarmServe", Unit: "allocs/op", Value: 0},
	)
	input := "BenchmarkDCT8x8-8 1000 100 ns/op\n" +
		"BenchmarkWarmServe-8 10 1050 frames/s\n"
	code, _, stderr, _ := gate(t, b, input)
	if code == 0 {
		t.Fatal("gate passed with the tracked unit missing")
	}
	if !strings.Contains(stderr, "BenchmarkWarmServe (allocs/op)") {
		t.Errorf("diagnostic does not name the missing unit:\n%s", stderr)
	}
}

// TestGateRegressionAndPass covers the two value paths: within
// tolerance passes, beyond tolerance fails.
func TestGateRegressionAndPass(t *testing.T) {
	b := calibrated(
		entry{Bench: "BenchmarkWarmServe", Unit: "frames/s", Value: 1000, HigherIsBetter: true, Normalize: true},
	)
	// Same machine speed (calibration matches), throughput down 5%: ok.
	code, stdout, _, _ := gate(t, b, "BenchmarkDCT8x8-8 1000 100 ns/op\nBenchmarkWarmServe-8 10 950 frames/s\n")
	if code != 0 {
		t.Fatalf("5%% dip failed a 10%% gate:\n%s", stdout)
	}
	// Down 20%: regression.
	code, stdout, _, _ = gate(t, b, "BenchmarkDCT8x8-8 1000 100 ns/op\nBenchmarkWarmServe-8 10 800 frames/s\n")
	if code == 0 {
		t.Fatalf("20%% regression passed a 10%% gate:\n%s", stdout)
	}
}

// TestGateWithoutCalibration: a baseline with no calibration block
// (machine-independent metrics, e.g. the fleet baseline's modeled
// joules) gates raw values with speed factor 1.
func TestGateWithoutCalibration(t *testing.T) {
	var b baseline
	b.Tolerance = 0.05
	b.Entries = []entry{
		{Bench: "BenchmarkFleet/small-healthy", Unit: "saved_pct", Value: 40, HigherIsBetter: true},
		{Bench: "BenchmarkFleet/small-healthy", Unit: "wrong_bytes", Value: 0},
	}
	input := "BenchmarkFleet/small-healthy 1 40.5 saved_pct 0 wrong_bytes\n"
	code, stdout, stderr, _ := gate(t, b, input)
	if code != 0 {
		t.Fatalf("uncalibrated gate failed: %s\n%s\n%s", stdout, stderr, input)
	}
	if !strings.Contains(stdout, "gating raw values") {
		t.Errorf("no raw-gating notice:\n%s", stdout)
	}
	// A zero-valued lower-is-better entry is an exact gate: any nonzero
	// measurement fails.
	code, stdout, _, _ = gate(t, b, "BenchmarkFleet/small-healthy 1 40.5 saved_pct 2 wrong_bytes\n")
	if code == 0 {
		t.Fatalf("nonzero wrong_bytes passed a zero baseline:\n%s", stdout)
	}
}

// TestUpdateRewritesBaseline: -update takes the run's values; a missing
// key still fails instead of writing a partial baseline.
func TestUpdateRewritesBaseline(t *testing.T) {
	b := calibrated(
		entry{Bench: "BenchmarkWarmServe", Unit: "frames/s", Value: 1000, HigherIsBetter: true},
	)
	path := writeBaseline(t, b)
	var out, errb strings.Builder
	code := run([]string{"-baseline", path, "-update"},
		strings.NewReader("BenchmarkDCT8x8-8 1000 90 ns/op\nBenchmarkWarmServe-8 10 1200 frames/s\n"), &out, &errb)
	if code != 0 {
		t.Fatalf("update failed: %s", errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got baseline
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Calibration.Value != 90 || got.Entries[0].Value != 1200 {
		t.Errorf("update wrote calibration %v / value %v, want 90 / 1200",
			got.Calibration.Value, got.Entries[0].Value)
	}

	// Missing key under -update: hard failure, baseline untouched.
	var out2, errb2 strings.Builder
	code = run([]string{"-baseline", path, "-update"},
		strings.NewReader("BenchmarkDCT8x8-8 1000 90 ns/op\n"), &out2, &errb2)
	if code == 0 {
		t.Fatal("update succeeded with the tracked benchmark missing")
	}
	if !strings.Contains(errb2.String(), "BenchmarkWarmServe") {
		t.Errorf("update diagnostic does not name the missing key: %s", errb2.String())
	}
}

// TestParseBenchLines pins the parser details the gate depends on:
// GOMAXPROCS suffix stripping, multiple value/unit pairs per line, and
// best-of-count selection.
func TestParseBenchLines(t *testing.T) {
	in := "goos: linux\n" +
		"BenchmarkX-16 100 250 ns/op 12 B/op 3 allocs/op\n" +
		"BenchmarkX-16 100 240 ns/op 12 B/op 3 allocs/op\n" +
		"BenchmarkFleet/small-healthy 1 42.5 saved_pct\n" +
		"PASS\n"
	sc := newScanner(in)
	res := parse(sc)
	if got := res["BenchmarkX"]["ns/op"]; len(got) != 2 || best(got, false) != 240 {
		t.Errorf("BenchmarkX ns/op = %v", got)
	}
	if got := res["BenchmarkX"]["allocs/op"]; len(got) != 2 || got[0] != 3 {
		t.Errorf("BenchmarkX allocs/op = %v", got)
	}
	if got := res["BenchmarkFleet/small-healthy"]["saved_pct"]; len(got) != 1 || got[0] != 42.5 {
		t.Errorf("fleet line = %v (name must keep its non-numeric suffix)", got)
	}
}

// newScanner wraps a string for parse().
func newScanner(s string) *bufio.Scanner {
	return bufio.NewScanner(strings.NewReader(s))
}
