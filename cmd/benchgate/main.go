// Command benchgate compares `go test -bench` output (on stdin)
// against a committed baseline file and fails when a tracked metric
// regresses beyond tolerance. CI machines differ in speed, so timed
// metrics are normalised by a calibration benchmark — a pure-CPU
// kernel (the 8×8 DCT) whose ratio to its committed baseline estimates
// the machine-speed factor; machine-independent metrics (allocs/op)
// compare raw. With -update, it rewrites the baseline's values from
// the measured run instead of gating.
//
//	go test -run xxx -bench '...' -benchmem . ./internal/stream | benchgate -baseline BENCH_serving.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type entry struct {
	Bench string  `json:"bench"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// HigherIsBetter: frames/s-style metrics regress downward;
	// ns/op- and allocs/op-style metrics regress upward.
	HigherIsBetter bool `json:"higher_is_better"`
	// Normalize applies the calibration speed factor (timed metrics
	// only; allocation counts are machine-independent).
	Normalize bool `json:"normalize"`
	// Tolerance overrides the file-level tolerance when nonzero.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Floor, when nonzero on a higher-is-better entry, is an absolute
	// normalised minimum that must hold regardless of the committed
	// value — how the ≥2× pipeline acceptance bound stays pinned even
	// if someone re-baselines.
	Floor float64 `json:"floor,omitempty"`
}

type baseline struct {
	Note        string `json:"note,omitempty"`
	Calibration struct {
		Bench string  `json:"bench"`
		Unit  string  `json:"unit"`
		Value float64 `json:"value"`
	} `json:"calibration"`
	Tolerance float64 `json:"tolerance"`
	Entries   []entry `json:"entries"`
}

// results maps bench name → unit → all measured values (a -count run
// yields several; the gate takes each entry's best).
type results map[string]map[string][]float64

func parse(r *bufio.Scanner) results {
	out := results{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		// Strip the trailing -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			if out[name] == nil {
				out[name] = map[string][]float64{}
			}
			out[name][f[i+1]] = append(out[name][f[i+1]], v)
		}
	}
	return out
}

func best(vals []float64, higherIsBetter bool) float64 {
	b := vals[0]
	for _, v := range vals[1:] {
		if (higherIsBetter && v > b) || (!higherIsBetter && v < b) {
			b = v
		}
	}
	return b
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_serving.json", "baseline JSON file")
	update := flag.Bool("update", false, "rewrite the baseline's values from this run instead of gating")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing baseline: %v", err)
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.10
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	res := parse(sc)

	calVals, ok := res[base.Calibration.Bench][base.Calibration.Unit]
	if !ok {
		fatal("calibration benchmark %s (%s) not found in input",
			base.Calibration.Bench, base.Calibration.Unit)
	}
	calMeasured := best(calVals, false) // ns/op-style: best is lowest
	// speed > 1 means this machine ran the calibration kernel faster
	// than the baseline machine did.
	speed := base.Calibration.Value / calMeasured

	if *update {
		base.Calibration.Value = calMeasured
		for i := range base.Entries {
			e := &base.Entries[i]
			vals, ok := res[e.Bench][e.Unit]
			if !ok {
				fatal("update: %s (%s) not found in input", e.Bench, e.Unit)
			}
			base.Entries[i].Value = best(vals, e.HigherIsBetter)
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("benchgate: baseline %s updated (calibration %.1f %s)\n",
			*baselinePath, calMeasured, base.Calibration.Unit)
		return
	}

	fmt.Printf("benchgate: calibration %s = %.1f %s (baseline %.1f, speed factor %.2fx)\n",
		base.Calibration.Bench, calMeasured, base.Calibration.Unit, base.Calibration.Value, speed)
	failed := false
	for _, e := range base.Entries {
		vals, ok := res[e.Bench][e.Unit]
		if !ok {
			fmt.Printf("FAIL %s: metric %q missing from benchmark output\n", e.Bench, e.Unit)
			failed = true
			continue
		}
		measured := best(vals, e.HigherIsBetter)
		normalized := measured
		if e.Normalize {
			if e.HigherIsBetter {
				normalized = measured / speed
			} else {
				normalized = measured * speed
			}
		}
		tol := e.Tolerance
		if tol <= 0 {
			tol = base.Tolerance
		}
		var limit float64
		var bad bool
		if e.HigherIsBetter {
			limit = e.Value * (1 - tol)
			bad = normalized < limit || (e.Floor > 0 && normalized < e.Floor)
		} else {
			limit = e.Value * (1 + tol)
			bad = normalized > limit
		}
		status := "ok  "
		if bad {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: %.1f %s (normalized %.1f, baseline %.1f, limit %.1f)\n",
			status, e.Bench, measured, e.Unit, normalized, e.Value, limit)
	}
	if failed {
		fatal("benchmark regression gate failed")
	}
	fmt.Println("benchgate: all tracked benchmarks within tolerance")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
