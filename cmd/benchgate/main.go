// Command benchgate compares benchmark output (on stdin) against a
// committed baseline file and fails when a tracked metric regresses
// beyond tolerance. It accepts `go test -bench` lines and anything else
// in the same shape (cmd/fleetsim -bench emits fleet metrics this way).
// CI machines differ in speed, so timed metrics are normalised by a
// calibration benchmark — a pure-CPU kernel (the 8×8 DCT) whose ratio
// to its committed baseline estimates the machine-speed factor;
// machine-independent metrics (allocs/op, modeled joules, counts)
// compare raw. A baseline with no calibration block gates everything
// raw (speed factor 1) — the fleet baseline is all modeled quantities.
// With -update, it rewrites the baseline's values from the measured run
// instead of gating.
//
// Every benchmark key in the baseline MUST appear in the measured
// input: a deleted or renamed benchmark fails the gate with a
// diagnostic instead of silently shrinking coverage.
//
//	go test -run xxx -bench '...' -benchmem . ./internal/stream | benchgate -baseline BENCH_serving.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type entry struct {
	Bench string  `json:"bench"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// HigherIsBetter: frames/s-style metrics regress downward;
	// ns/op- and allocs/op-style metrics regress upward.
	HigherIsBetter bool `json:"higher_is_better"`
	// Normalize applies the calibration speed factor (timed metrics
	// only; allocation counts are machine-independent).
	Normalize bool `json:"normalize"`
	// Tolerance overrides the file-level tolerance when nonzero.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Floor, when nonzero on a higher-is-better entry, is an absolute
	// normalised minimum that must hold regardless of the committed
	// value — how the ≥2× pipeline acceptance bound stays pinned even
	// if someone re-baselines.
	Floor float64 `json:"floor,omitempty"`
}

type baseline struct {
	Note        string `json:"note,omitempty"`
	Calibration struct {
		Bench string  `json:"bench"`
		Unit  string  `json:"unit"`
		Value float64 `json:"value"`
	} `json:"calibration"`
	Tolerance float64 `json:"tolerance"`
	Entries   []entry `json:"entries"`
}

// results maps bench name → unit → all measured values (a -count run
// yields several; the gate takes each entry's best).
type results map[string]map[string][]float64

func parse(r *bufio.Scanner) results {
	out := results{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		// Strip the trailing -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			if out[name] == nil {
				out[name] = map[string][]float64{}
			}
			out[name][f[i+1]] = append(out[name][f[i+1]], v)
		}
	}
	return out
}

func best(vals []float64, higherIsBetter bool) float64 {
	b := vals[0]
	for _, v := range vals[1:] {
		if (higherIsBetter && v > b) || (!higherIsBetter && v < b) {
			b = v
		}
	}
	return b
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the gate logic is unit
// testable end to end (missing keys, regressions, update mode).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_serving.json", "baseline JSON file")
	update := fs.Bool("update", false, "rewrite the baseline's values from this run instead of gating")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "benchgate: "+format+"\n", a...)
		return 1
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fail("reading baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fail("parsing baseline: %v", err)
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.10
	}

	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	res := parse(sc)

	// speed > 1 means this machine ran the calibration kernel faster
	// than the baseline machine did. A baseline without a calibration
	// block is machine-independent: everything compares raw.
	speed := 1.0
	calMeasured := 0.0
	if base.Calibration.Bench != "" {
		calVals, ok := res[base.Calibration.Bench][base.Calibration.Unit]
		if !ok {
			return fail("calibration benchmark %s (%s) not found in input",
				base.Calibration.Bench, base.Calibration.Unit)
		}
		calMeasured = best(calVals, false) // ns/op-style: best is lowest
		speed = base.Calibration.Value / calMeasured
	}

	if *update {
		if base.Calibration.Bench != "" {
			base.Calibration.Value = calMeasured
		}
		for i := range base.Entries {
			e := &base.Entries[i]
			vals, ok := res[e.Bench][e.Unit]
			if !ok {
				return fail("update: %s (%s) not found in input", e.Bench, e.Unit)
			}
			base.Entries[i].Value = best(vals, e.HigherIsBetter)
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "benchgate: baseline %s updated (calibration %.1f %s)\n",
			*baselinePath, calMeasured, base.Calibration.Unit)
		return 0
	}

	if base.Calibration.Bench != "" {
		fmt.Fprintf(stdout, "benchgate: calibration %s = %.1f %s (baseline %.1f, speed factor %.2fx)\n",
			base.Calibration.Bench, calMeasured, base.Calibration.Unit, base.Calibration.Value, speed)
	} else {
		fmt.Fprintf(stdout, "benchgate: no calibration block in %s; gating raw values\n", *baselinePath)
	}
	failed := false
	var missing []string
	for _, e := range base.Entries {
		vals, ok := res[e.Bench][e.Unit]
		if !ok {
			// A baseline key absent from the run means the benchmark was
			// deleted, renamed, or not executed — never skip it silently:
			// a gate that only checks what still exists gates nothing.
			fmt.Fprintf(stdout, "FAIL %s: metric %q missing from benchmark output\n", e.Bench, e.Unit)
			missing = append(missing, fmt.Sprintf("%s (%s)", e.Bench, e.Unit))
			failed = true
			continue
		}
		measured := best(vals, e.HigherIsBetter)
		normalized := measured
		if e.Normalize {
			if e.HigherIsBetter {
				normalized = measured / speed
			} else {
				normalized = measured * speed
			}
		}
		tol := e.Tolerance
		if tol <= 0 {
			tol = base.Tolerance
		}
		var limit float64
		var bad bool
		if e.HigherIsBetter {
			limit = e.Value * (1 - tol)
			bad = normalized < limit || (e.Floor > 0 && normalized < e.Floor)
		} else {
			limit = e.Value * (1 + tol)
			bad = normalized > limit
		}
		status := "ok  "
		if bad {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(stdout, "%s %s: %.1f %s (normalized %.1f, baseline %.1f, limit %.1f)\n",
			status, e.Bench, measured, e.Unit, normalized, e.Value, limit)
	}
	if len(missing) > 0 {
		fmt.Fprintf(stderr, "benchgate: %d baseline key(s) missing from the measured run: %s\n",
			len(missing), strings.Join(missing, ", "))
		fmt.Fprintf(stderr, "benchgate: if a benchmark was intentionally removed or renamed, update %s to match\n",
			*baselinePath)
	}
	if failed {
		return fail("benchmark regression gate failed")
	}
	fmt.Fprintln(stdout, "benchgate: all tracked benchmarks within tolerance")
	return 0
}
