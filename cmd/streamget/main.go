// Command streamget is the mobile client of the paper's system model: it
// connects to a streamd server (or proxy), negotiates a clip at a quality
// level for its device, plays the stream, and reports the power accounting
// of the session plus the annotation side channels it received.
//
// Usage:
//
//	streamget [-addr 127.0.0.1:7400] -clip returnoftheking
//	          [-quality 0.10] [-device ipaq5555]
//	          [-adaptive] [-battery-wh 7.4]
//	          [-retries 5] [-read-timeout 10s] [-no-resume]
//	          [-log-level info]
//
// The client survives a lossy link: reads carry deadlines, failed
// sessions reconnect with exponential backoff + jitter, and when the
// server speaks protocol v2 or newer a reconnect resumes from the last
// fully-decoded frame instead of replaying the clip. With -adaptive the
// session speaks protocol v4 and walks the quality ladder live: the
// playout buffer's health (and, with -battery-wh, a draining battery
// gauge) moves the rung at scene boundaries, degrading gracefully under
// a throttled link instead of stalling. Every session ends with the
// power ledger's report ("power saved: NN.N%"); -log-level selects the
// threshold for the structured key=value events the session also emits
// (power_report at info, per-scene detail at debug).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/battery"
	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/dvs"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/stream"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "server or proxy address")
	clip := flag.String("clip", "", "clip to request")
	quality := flag.Float64("quality", 0.10, "accepted clipping budget (0..0.20)")
	deviceName := flag.String("device", "ipaq5555", "device profile")
	retries := flag.Int("retries", 0, "max connection attempts (0 = default of 5)")
	readTimeout := flag.Duration("read-timeout", 0, "per-read deadline on the stream (0 = default of 10s)")
	noResume := flag.Bool("no-resume", false, "speak protocol v1 only (failures replay from frame 0)")
	adaptiveMode := flag.Bool("adaptive", false, "walk the quality ladder live (protocol v4)")
	batteryWh := flag.Float64("battery-wh", 0, "with -adaptive: watt-hours left in the battery (0 = no battery floor)")
	logLevel := flag.String("log-level", "info", "structured event threshold (debug, info, warn, error)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamget:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, lvl)

	if *clip == "" {
		fmt.Fprintln(os.Stderr, "streamget: -clip is required")
		os.Exit(2)
	}
	dev := display.ByName(*deviceName)
	if dev == nil {
		fmt.Fprintf(os.Stderr, "streamget: unknown device %q\n", *deviceName)
		os.Exit(2)
	}
	if err := compensate.ValidateBudget(*quality); err != nil {
		fmt.Fprintln(os.Stderr, "streamget:", err)
		os.Exit(2)
	}
	if *batteryWh < 0 {
		fmt.Fprintln(os.Stderr, "streamget: -battery-wh must be >= 0")
		os.Exit(2)
	}
	if *batteryWh > 0 && !*adaptiveMode {
		fmt.Fprintln(os.Stderr, "streamget: -battery-wh needs -adaptive (the battery floor is a ladder input)")
		os.Exit(2)
	}

	client := &stream.Client{
		Device:        dev,
		Retry:         stream.RetryPolicy{MaxAttempts: *retries},
		ReadTimeout:   *readTimeout,
		DisableResume: *noResume,
	}
	if *adaptiveMode {
		cfg := &adaptive.LadderConfig{}
		if *batteryWh > 0 {
			cfg.Battery = battery.NewGaugeWh(*batteryWh)
		}
		client.Ladder = cfg
	}
	res, err := client.Play(*addr, *clip, *quality)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamget:", err)
		os.Exit(1)
	}

	fmt.Printf("clip              %s @ %.0f%% quality on %s\n", *clip, *quality*100, dev.Name)
	if res.Retries > 0 || res.Resumes > 0 {
		fmt.Printf("resilience        %d retries, %d mid-clip resumes (protocol v%d)\n",
			res.Retries, res.Resumes, res.ProtocolVersion)
	}
	if len(res.Degraded) > 0 {
		fmt.Printf("degraded          dropped side channels: %s\n", strings.Join(res.Degraded, ", "))
	}
	if *adaptiveMode && res.ProtocolVersion >= 4 {
		fmt.Printf("quality ladder    %d switches, finished on rung %d (%.0f%% clipping), worst lag %.2fs\n",
			res.QualitySwitches, res.FinalRung, compensate.QualityLevels[res.FinalRung]*100, res.MaxLagSeconds)
		if res.Ledger != nil && len(res.Ledger.RungSeconds) > 0 {
			var dwell []string
			for _, rung := range res.Ledger.SortedRungs() {
				dwell = append(dwell, fmt.Sprintf("rung %d: %.1fs", rung, res.Ledger.RungSeconds[rung]))
			}
			fmt.Printf("rung dwell        %s\n", strings.Join(dwell, ", "))
		}
	}
	fmt.Printf("frames            %d in %d scenes\n", res.Frames, res.Scenes)
	fmt.Printf("stream bytes      %d (backlight annotations %d bytes)\n", res.BytesStream, res.BytesAnn)
	fmt.Printf("avg backlight     %.1f/255 (%d switches)\n", res.AvgLevel, res.Switches)
	fmt.Printf("backlight saving  %.1f%%\n", res.BacklightSavings*100)
	fmt.Printf("total saving      %.1f%%\n", res.TotalSavings*100)

	if len(res.DecodeCycles) > 0 {
		// What a DVS-capable client would do with the cycle annotations.
		table := dvs.XScale()
		actual := make([]float64, len(res.DecodeCycles))
		for i, c := range res.DecodeCycles {
			actual[i] = float64(c)
		}
		deadline := 1.0 / 15
		static, err1 := dvs.Simulate(table, dvs.StaticMax{}, actual, deadline)
		annotated, err2 := dvs.Simulate(table, dvs.Annotated{Cycles: res.DecodeCycles}, actual, deadline)
		if err1 == nil && err2 == nil && static.EnergyJoules > 0 {
			fmt.Printf("dvs annotations   %d frames; annotated governor would save %.1f%% CPU energy\n",
				len(res.DecodeCycles), (1-annotated.EnergyJoules/static.EnergyJoules)*100)
		}
	}
	if len(res.NetScenes) > 0 {
		wnic := netsched.DefaultWNIC()
		results, err := wnic.Compare(res.NetScenes, 0.1)
		if err == nil {
			for _, r := range results {
				if r.Policy == "annotated" {
					fmt.Printf("net annotations   %d scenes; burst scheduling would save %.1f%% WNIC energy\n",
						len(res.NetScenes), r.Savings*100)
				}
			}
		}
	}
	if res.Ledger != nil {
		fmt.Println()
		fmt.Println(res.Ledger)
		res.Ledger.Emit(logger)
	}
}
