// Package repro is a from-scratch Go reproduction of
//
//	R. Cornea, A. Nicolau, N. Dutt,
//	"Software Annotations for Power Optimization on Mobile Devices",
//	DATE 2006.
//
// The system annotates streaming video with per-scene luminance summaries
// computed offline at the server or a proxy, so that a mobile client can
// dim its LCD backlight scene by scene — with the frames brightened
// upstream to compensate — saving up to ~65% of backlight power with
// little or no visible quality loss.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory), the runnable entry points under cmd/ and examples/, and the
// figure-by-figure reproduction harness in bench_test.go and
// cmd/experiments (results in EXPERIMENTS.md).
package repro
