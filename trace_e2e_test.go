// End-to-end distributed tracing test: a cold-miss request through
// client → proxy → upstream server must yield ONE connected trace tree
// — the trace ID minted by the client propagates in-process via context
// and across both TCP hops via the protocol's v3 header extension, so
// the pipeline stages that ran on the far server parent back to the
// client's root span. Also pins the per-session power ledger against
// the client's own savings accounting.
package repro_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/video"
)

func TestTracePropagatesAcrossTiers(t *testing.T) {
	clip := video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 10, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.75, HighlightFrac: 0.01},
		{Frames: 10, BaseLuma: 0.25, LumaSpread: 0.12, MaxLuma: 0.95, HighlightFrac: 0.01},
	})
	catalog := map[string]core.Source{"night": core.ClipSource{Clip: clip}}

	// One registry shared by every tier: all spans of the distributed
	// request land in the same ring, so the assembled tree shows the
	// full cross-process chain with no orphan roots.
	reg := obs.NewRegistry()
	ds, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	srv := stream.NewServer(catalog)
	srv.SetLogf(func(string, ...any) {})
	srv.SetObserver(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy := stream.NewProxy(addr.String())
	proxy.SetLogf(func(string, ...any) {})
	proxy.SetObserver(reg)
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client := &stream.Client{Device: display.IPAQ5555(), Obs: reg}
	res, err := client.Play(proxyAddr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}

	// --- the single connected trace tree ---
	trees := reg.TraceTrees(0)
	if len(trees) != 1 {
		t.Fatalf("got %d trace trees, want 1 (one request, one trace)", len(trees))
	}
	tree := trees[0]
	if len(tree.Roots) != 1 {
		names := []string{}
		for _, r := range tree.Roots {
			names = append(names, r.Record.Name)
		}
		t.Fatalf("tree has %d roots (%v), want 1 — a broken parent link", len(tree.Roots), names)
	}
	if got := tree.Roots[0].Record.Name; got != "client.play" {
		t.Fatalf("tree rooted at %q, want client.play", got)
	}

	// Every span of the request carries the one trace ID; walk the tree
	// and count the tiers it crossed.
	seen := map[string]int{}
	var walk func(n *obs.TraceNode, depth int)
	var depthOf = map[string]int{}
	walk = func(n *obs.TraceNode, depth int) {
		if n.Record.Trace != tree.Trace {
			t.Errorf("span %s carries trace %s, want %s",
				n.Record.Name, n.Record.Trace, tree.Trace)
		}
		seen[n.Record.Name]++
		if _, ok := depthOf[n.Record.Name]; !ok {
			depthOf[n.Record.Name] = depth
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(tree.Roots[0], 0)

	for _, want := range []string{
		"client.play",      // client root
		"client.attempt",   // one connection attempt
		"proxy.session",    // first hop
		"proxy.fetch_raw",  // upstream fetch (the second hop's client side)
		"server.session",   // far server, joined via the v3 header
		"anncache.lookup",  // artifact resolution on a cold miss
		"annotate.luma_stats", // the pipeline actually ran
	} {
		if seen[want] == 0 {
			t.Errorf("trace tree missing span %q (saw %v)", want, seen)
		}
	}
	// The chain must be genuinely nested, not a flat fan-out: the far
	// server's session hangs below the proxy's upstream fetch.
	if !(depthOf["server.session"] > depthOf["proxy.fetch_raw"] &&
		depthOf["proxy.fetch_raw"] > depthOf["proxy.session"] &&
		depthOf["proxy.session"] > depthOf["client.play"]) {
		t.Errorf("tiers not nested: depths %v", depthOf)
	}
	if seen["anncache.lookup"] < 2 {
		t.Errorf("anncache.lookup seen %d times, want >= 2 (track + variant)", seen["anncache.lookup"])
	}

	// --- /debug/traces serves the same tree over HTTP ---
	body := scrape(t, "http://"+ds.Addr().String(), "/debug/traces")
	var served []struct {
		Trace string `json:"trace"`
		Spans int    `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &served); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, body)
	}
	if len(served) != 1 || served[0].Trace != tree.Trace.String() || served[0].Spans != tree.Spans {
		t.Errorf("/debug/traces = %+v, want trace %s with %d spans",
			served, tree.Trace, tree.Spans)
	}

	// --- the power ledger agrees with the session's own accounting ---
	if res.Ledger == nil {
		t.Fatal("PlayResult.Ledger is nil")
	}
	if want := 100 * res.TotalSavings; math.Abs(res.Ledger.SavedPct-want) > 1e-6 {
		t.Errorf("ledger SavedPct = %v, want session accounting's %v", res.Ledger.SavedPct, want)
	}
	if want := 100 * res.BacklightSavings; math.Abs(res.Ledger.BacklightSavedPct-want) > 1e-6 {
		t.Errorf("ledger BacklightSavedPct = %v, want %v", res.Ledger.BacklightSavedPct, want)
	}
	if res.Ledger.Frames != res.Frames || res.Ledger.WireBytes != int64(res.BytesStream) {
		t.Errorf("ledger frames/bytes = %d/%d, want %d/%d",
			res.Ledger.Frames, res.Ledger.WireBytes, res.Frames, res.BytesStream)
	}
	if !strings.Contains(res.Ledger.String(), "power saved: ") {
		t.Errorf("ledger report missing headline:\n%s", res.Ledger)
	}

	// Serving-side aggregation saw the session without client feedback
	// (the proxy served the annotated stream; the server only fed it raw).
	metrics := parseExposition(t, scrape(t, "http://"+ds.Addr().String(), "/metrics"))
	if v := metrics[`session_total{role="proxy"}`]; v < 1 {
		t.Errorf(`session_total{role="proxy"} = %v, want >= 1`, v)
	}
	if v := metrics[`power_saved_joules{role="proxy"}`]; v <= 0 {
		t.Errorf(`power_saved_joules{role="proxy"} = %v, want > 0`, v)
	}
}

// TestTraceSamplingDisabledEndToEnd pins head sampling: with a ratio of
// zero at the client, no tier records trace spans (the decision rides
// the header), while metrics still flow.
func TestTraceSamplingDisabledEndToEnd(t *testing.T) {
	clip := video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 8, BaseLuma: 0.2, LumaSpread: 0.1, MaxLuma: 0.8, HighlightFrac: 0.01},
	})
	reg := obs.NewRegistry()
	reg.SetTraceSampling(0)

	srv := stream.NewServer(map[string]core.Source{"night": core.ClipSource{Clip: clip}})
	srv.SetLogf(func(string, ...any) {})
	srv.SetObserver(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &stream.Client{Device: display.IPAQ5555(), Obs: reg}
	if _, err := client.Play(addr.String(), "night", 0.10); err != nil {
		t.Fatal(err)
	}
	if trees := reg.TraceTrees(0); len(trees) != 0 {
		t.Fatalf("sampling 0 still recorded %d trees", len(trees))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `span_duration_seconds_count{span="server.session"}`) {
		t.Error("unsampled session span missing from metrics")
	}
}
