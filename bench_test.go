// Benchmarks regenerating every figure of the paper's evaluation (one
// benchmark per figure, reporting the headline quantity as a custom
// metric) plus microbenchmarks of each pipeline stage. Run with
//
//	go test -bench=. -benchmem
//
// The figure benchmarks call the same generators as cmd/experiments, so
// timing them and reproducing the evaluation are the same action.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/annotation"
	"repro/internal/camera"
	"repro/internal/codec"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/dvs"
	"repro/internal/experiments"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/pixel"
	"repro/internal/power"
	"repro/internal/quality"
	"repro/internal/scene"
	"repro/internal/video"
)

func benchOptions() experiments.Options {
	return experiments.Options{
		Library: video.LibraryOptions{W: 80, H: 60, FPS: 8, DurationScale: 0.15},
		Device:  display.IPAQ5555(),
	}
}

// --- figure benchmarks ---

func BenchmarkFig3HistogramProperties(b *testing.B) {
	opt := benchOptions()
	var r experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3(opt)
	}
	b.ReportMetric(r.Average, "avg-luma")
	b.ReportMetric(float64(r.DynamicRange), "dyn-range")
}

func BenchmarkFig4CompensationValidation(b *testing.B) {
	opt := benchOptions()
	var r experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4(opt)
	}
	b.ReportMetric(r.MeanShift, "comp-shift")
	b.ReportMetric(r.UncompShift, "uncomp-shift")
}

func BenchmarkFig5QualityTradeoff(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5(opt)
	}
	b.ReportMetric(rows[1].Lost*100, "lost%@5")
	b.ReportMetric(rows[4].Lost*100, "lost%@20")
}

func BenchmarkFig6SceneGrouping(b *testing.B) {
	opt := benchOptions()
	var r experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig6(opt, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Scenes), "scenes")
	var saved float64
	for _, rec := range r.Records {
		saved += rec.PowerSaved
	}
	b.ReportMetric(saved/float64(len(r.Records))*100, "avg-saved%")
}

func BenchmarkFig7BrightnessVsBacklight(b *testing.B) {
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig7(nil)
	}
	mid := rows[len(rows)/2]
	b.ReportMetric(mid.Measured["ipaq5555"], "led-mid")
	b.ReportMetric(mid.Measured["ipaq3650"], "ccfl-mid")
}

func BenchmarkFig8BrightnessVsWhite(b *testing.B) {
	dev := display.IPAQ5555()
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8(dev, nil)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.AtFull, "white-full")
	b.ReportMetric(last.AtHalf, "white-half")
}

// sweepMetrics extracts the headline Figure 9/10 numbers from a sweep.
func sweepMetrics(rows []experiments.SavingsRow) (maxBacklight, iceBacklight, maxTotal float64) {
	for _, r := range rows {
		for _, v := range r.Backlight {
			if v > maxBacklight {
				maxBacklight = v
			}
		}
		for _, v := range r.Total {
			if v > maxTotal {
				maxTotal = v
			}
		}
		if r.Clip == "ice_age" {
			iceBacklight = r.Backlight[2]
		}
	}
	return
}

func BenchmarkFig9BacklightSavings(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.SavingsRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Sweep(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxBl, ice, _ := sweepMetrics(rows)
	b.ReportMetric(maxBl*100, "max-saved%")
	b.ReportMetric(ice*100, "ice_age%@10")
}

func BenchmarkFig10TotalSavings(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.SavingsRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Sweep(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	_, _, maxTotal := sweepMetrics(rows)
	b.ReportMetric(maxTotal*100, "max-total%")
}

func BenchmarkPowerBreakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		for _, dev := range display.Devices() {
			share = power.DefaultModel(dev).BacklightShare()
		}
	}
	b.ReportMetric(share*100, "backlight-share%")
}

func BenchmarkAnnotationOverhead(b *testing.B) {
	opt := benchOptions()
	clip := video.ClipByName("returnoftheking", opt.Library)
	src := core.ClipSource{Clip: clip}
	var track *annotation.Track
	var err error
	for i := 0; i < b.N; i++ {
		track, _, err = core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(track.Size()), "bytes")
}

// BenchmarkAnnotatePipeline measures annotation throughput against the
// worker count. Per-frame statistics dominate the pass and are
// embarrassingly parallel, so throughput should scale near-linearly with
// workers up to the core count (on a multi-core host; GOMAXPROCS=1
// serialises the pool). Every parallel run is also checked byte-identical
// to the sequential track — the correctness half of the contract.
func BenchmarkAnnotatePipeline(b *testing.B) {
	opt := benchOptions()
	clip := video.ClipByName("returnoftheking", opt.Library)
	src := core.ClipSource{Clip: clip}
	cfg := scene.DefaultConfig(clip.FPS)
	ctx := context.Background()
	seq, _, err := core.AnnotatePipeline(ctx, src, cfg, nil, core.AnnotateOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	golden := seq.Encode()
	frames := float64(src.TotalFrames())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var track *annotation.Track
			for i := 0; i < b.N; i++ {
				track, _, err = core.AnnotatePipeline(ctx, src, cfg, nil,
					core.AnnotateOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			if !bytes.Equal(track.Encode(), golden) {
				b.Fatal("parallel track differs from sequential")
			}
			b.ReportMetric(frames*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// --- ablation benchmarks ---

func BenchmarkAblationThresholds(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.ThresholdRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblateThresholds(opt, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "configs")
}

func BenchmarkAblationGranularity(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.GranularityRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblateGranularity(opt, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[1].Switches-rows[0].Switches), "extra-switches")
}

func BenchmarkAblationBaselines(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Baselines(opt, "", 0.10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransferAwareness(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateTransferAwareness(opt, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCompensationMethod(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.MethodRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblateCompensationMethod(opt)
	}
	b.ReportMetric(rows[0].MeanAbsErr, "contrast-err")
	b.ReportMetric(rows[1].MeanAbsErr, "brightness-err")
}

// --- pipeline stage microbenchmarks ---

func benchFrame() *frame.Frame {
	c := video.MustNew("bench", 160, 120, 10, 3, []video.SceneSpec{
		{Frames: 2, BaseLuma: 0.3, LumaSpread: 0.2, MaxLuma: 0.9, HighlightFrac: 0.02, Chroma: 0.5},
	})
	return c.Frame(0)
}

func BenchmarkFrameRender(b *testing.B) {
	c := video.MustNew("bench", 160, 120, 10, 3, []video.SceneSpec{
		{Frames: 1 << 30, BaseLuma: 0.3, LumaSpread: 0.2, MaxLuma: 0.9, HighlightFrac: 0.02, Chroma: 0.5, Motion: 1},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Frame(i % 1024)
	}
}

func BenchmarkHistogramFromFrame(b *testing.B) {
	f := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		histogram.FromFrame(f)
	}
}

func BenchmarkDCT8x8(b *testing.B) {
	var src, dst codec.Block
	for i := range src {
		src[i] = float64(i%255) - 128
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		codec.FDCT(&src, &dst)
		codec.IDCT(&dst, &src)
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	f := benchFrame()
	enc, err := codec.NewEncoder(f.W, f.H, 10, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(f.W * f.H * 3))
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	f := benchFrame()
	enc, _ := codec.NewEncoder(f.W, f.H, 1, 4)
	ef, err := enc.Encode(f)
	if err != nil {
		b.Fatal(err)
	}
	dec, _ := codec.NewDecoder(f.W, f.H)
	b.ReportAllocs()
	b.SetBytes(int64(f.W * f.H * 3))
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(ef); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompensateFrame(b *testing.B) {
	f := benchFrame()
	plan := compensate.Plan{Target: 0.5, K: 2}
	b.ReportAllocs()
	b.SetBytes(int64(f.W * f.H * 3))
	for i := 0; i < b.N; i++ {
		plan.Compensated(compensate.ContrastEnhancement, f)
	}
}

func BenchmarkSceneDetect(b *testing.B) {
	stats := make([]scene.FrameStats, 600)
	for i := range stats {
		stats[i] = scene.FrameStats{MaxLuma: float64(50 + (i/60)*20%200)}
	}
	cfg := scene.DefaultConfig(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scene.Detect(cfg, stats)
	}
}

func BenchmarkLevelFor(b *testing.B) {
	dev := display.IPAQ5555()
	dev.BuildInverse()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.LevelFor(float64(i%256) / 255)
	}
}

func BenchmarkAnnotationEncodeDecode(b *testing.B) {
	recs := make([]annotation.Record, 45)
	for i := range recs {
		recs[i] = annotation.Record{Frames: 40, Targets: []uint8{200, 160, 140, 130, 120}}
	}
	track := &annotation.Track{FPS: 10, Quality: compensate.QualityLevels, Records: recs}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data := track.Encode()
		if _, err := annotation.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDAQMeasure(b *testing.B) {
	dev := display.IPAQ5555()
	model := power.DefaultModel(dev)
	daq := power.DefaultDAQ()
	var tr power.Trace
	tr.Append(1.0, power.State{Decoding: true, NetworkActive: true, BacklightLevel: 120})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := daq.Measure(model, &tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCameraSnapshot(b *testing.B) {
	cam := camera.Default()
	dev := display.IPAQ5555()
	f := frame.Solid(64, 64, pixel.Gray(128))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cam.Snapshot(dev, f, 128)
	}
}

func BenchmarkEndToEndPipeline(b *testing.B) {
	opt := benchOptions()
	clip := video.ClipByName("catwoman", opt.Library)
	src := core.ClipSource{Clip: clip}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Play(src, track, core.PlaybackOptions{
			Device: opt.Device, Quality: 0.10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- application benchmarks (the further §3 uses of annotations) ---

func BenchmarkApplicationDVS(b *testing.B) {
	opt := benchOptions()
	var rows []dvs.Result
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.DVSRows(opt, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Governor == "annotated" {
			b.ReportMetric(r.Savings*100, "cpu-saved%")
		}
	}
}

func BenchmarkApplicationNetwork(b *testing.B) {
	opt := benchOptions()
	var rows []netsched.Result
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.NetworkRows(opt, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Policy == "annotated" {
			b.ReportMetric(r.Savings*100, "wnic-saved%")
		}
	}
}

func BenchmarkApplicationBattery(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.BatteryRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.BatteryRows(opt, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].GainOverQ0*100, "runtime-gain%")
}

func BenchmarkApplicationCredits(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.CreditsRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.CreditsRows(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.PlainTextClipped*100, "plain-text-clipped%")
	b.ReportMetric(last.ROITextClipped*100, "roi-text-clipped%")
}

func BenchmarkCameraResponseRecovery(b *testing.B) {
	cam := camera.Default()
	for i := 0; i < b.N; i++ {
		if _, err := cam.Characterize(24, []float64{0.25, 0.5, 1, 2, 4}, camera.RecoverOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRateControl(b *testing.B) {
	opt := benchOptions()
	clip := video.ClipByName("officexp", opt.Library)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rc, err := codec.NewRateController(120_000, clip.FPS, 8)
		if err != nil {
			b.Fatal(err)
		}
		enc, err := codec.NewEncoder(clip.W, clip.H, clip.FPS, rc.QScale())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < clip.TotalFrames(); j++ {
			enc.SetQScale(rc.QScale())
			ef, err := enc.Encode(clip.Frame(j))
			if err != nil {
				b.Fatal(err)
			}
			rc.Observe(ef)
		}
	}
}

func BenchmarkQualityMetrics(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.QualityRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.QualityMetrics(opt, "", 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].SnapPSNR, "psnr@5")
	b.ReportMetric(rows[1].SnapSSIM, "ssim@5")
}

func BenchmarkSSIM(b *testing.B) {
	f := benchFrame()
	g := f.Map(func(p pixel.RGB) pixel.RGB { return p.Add(3) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := quality.SSIM(f, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplicationAdaptive(b *testing.B) {
	opt := benchOptions()
	var rows []adaptive.Result
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AdaptiveRows(opt, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].MeanQuality, "aware-mean-q")
	b.ReportMetric(rows[1].MeanQuality, "fixed-mean-q")
}

func BenchmarkAblationHardwareSteps(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.HardwareRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblateHardwareSteps(opt, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].LossPts*100, "loss-pts@4steps")
}

func BenchmarkAblationDetectors(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateDetectors(opt, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// --- telemetry hot-path overhead (internal/obs) ---
//
// The no-op benchmarks prove disabled instrumentation is free: metric
// handles from a nil registry must cost ~1ns and zero allocations per
// operation, so the pipeline can stay instrumented unconditionally.

func BenchmarkObsCounterInc(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("bench_total", "Bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncNop(b *testing.B) {
	var r *obs.Registry
	c := r.Counter("bench_total", "Bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if n := testing.AllocsPerRun(1000, c.Inc); n != 0 {
		b.Fatalf("no-op counter allocates %v/op", n)
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	r := obs.NewRegistry()
	g := r.Gauge("bench_gauge", "Bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	r := obs.NewRegistry()
	h := r.Histogram("bench_seconds", "Bench.", obs.DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

func BenchmarkObsSpan(b *testing.B) {
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.StartSpan(ctx, "bench.stage").End()
	}
}

func BenchmarkObsSpanNop(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.StartSpan(ctx, "bench.stage").End()
	}
	if n := testing.AllocsPerRun(1000, func() {
		obs.StartSpan(ctx, "bench.stage").End()
	}); n != 0 {
		b.Fatalf("no-op span allocates %v/op", n)
	}
}

func BenchmarkObsTrace(b *testing.B) {
	ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tctx, root := obs.StartTrace(ctx, "bench.request")
		_, child := obs.StartSpanCtx(tctx, "bench.stage")
		child.SetAttr("outcome", "hit")
		child.End()
		root.End()
	}
}

// BenchmarkObsTraceNop is the alloc gate for the disabled-tracer path:
// with no registry attached, rooting a trace, opening a child span via
// context and attaching attributes must cost zero allocations, so the
// client/server hot paths can stay trace-instrumented unconditionally.
func BenchmarkObsTraceNop(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tctx, root := obs.StartTrace(ctx, "bench.request")
		_, child := obs.StartSpanCtx(tctx, "bench.stage")
		child.SetAttr("outcome", "hit")
		child.SetAttrInt("bytes", 42)
		child.End()
		root.End()
	}
	if n := testing.AllocsPerRun(1000, func() {
		tctx, root := obs.StartTrace(ctx, "bench.request")
		_, child := obs.StartSpanCtx(tctx, "bench.stage")
		child.SetAttr("outcome", "hit")
		child.SetAttrInt("bytes", 42)
		child.End()
		root.End()
	}); n != 0 {
		b.Fatalf("no-op trace allocates %v/op", n)
	}
}
