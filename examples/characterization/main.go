// Characterization: the paper's device measurement flow (§5) and the
// camera-based quality validation (§4.2, Figure 2).
//
// Solid gray frames are displayed on each PDA model and photographed with
// a digital camera (simulated here with a monotone nonlinear response), so
// the backlight→luminance transfer of each display technology can be
// inverted at runtime. The same camera then validates compensation: a dark
// frame at full backlight vs its compensated version at a dimmed
// backlight, compared by histogram.
//
//	go run ./examples/characterization
package main

import (
	"fmt"

	"repro/internal/camera"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
	"repro/internal/video"
)

func main() {
	cam := camera.Default()

	// Step 1 — characterise: photograph a white screen at rising
	// backlight levels on each device. The curves differ per backlight
	// technology and are visibly nonlinear (Figure 7).
	fmt.Println("backlight -> measured brightness (white screen)")
	fmt.Printf("%-10s %-12s %-12s %-12s\n", "level", "ipaq3650", "zaurus5600", "ipaq5555")
	white := frame.Solid(24, 24, pixel.Gray(255))
	for _, level := range []int{0, 32, 64, 96, 128, 160, 192, 224, 255} {
		fmt.Printf("%-10d", level)
		for _, dev := range display.Devices() {
			shot := cam.Snapshot(dev, white, level)
			fmt.Printf(" %-12.1f", shot.AvgLuma())
		}
		fmt.Println()
	}

	// Step 2 — build the inverse lookup: at runtime the client turns an
	// annotated luminance target into a backlight level with one lookup.
	dev := display.IPAQ5555()
	dev.BuildInverse()
	fmt.Println("\ninverse transfer on ipaq5555 (target luminance -> backlight level)")
	for _, target := range []float64{0.25, 0.5, 0.75, 1.0} {
		level := dev.LevelFor(target)
		fmt.Printf("  target %.2f -> level %3d (luminance delivered %.3f)\n",
			target, level, dev.Luminance(level))
	}

	// Step 3 — validate compensation with the camera (Figure 2 flow).
	clip := video.ClipByName("themovie", video.LibraryOptions{W: 96, H: 72, FPS: 10, DurationScale: 0.05})
	f := clip.Frame(0)
	h := histogram.FromFrame(f)
	target := compensate.SceneTarget(h, 0.05) // 5% clipping budget
	level := dev.LevelFor(target)
	comp := core.CompensateFrame(f, target, compensate.ContrastEnhancement)

	good := cam.Compare(dev, f, comp, level)
	bad := cam.Compare(dev, f, f, level)
	fmt.Printf("\ncamera validation on a dark frame (backlight dimmed to %d/255):\n", level)
	fmt.Printf("  reference snapshot      avg %.1f, range %d\n", good.RefAvg, good.RefRange)
	fmt.Printf("  compensated snapshot    avg %.1f, range %d (shift %+.1f, EMD %.1f)\n",
		good.CompAvg, good.CompRange, good.MeanShift, good.EMD)
	fmt.Printf("  without compensation    shift %+.1f, EMD %.1f  <- visibly darker\n",
		bad.MeanShift, bad.EMD)
	fmt.Printf("  backlight power saved at this level: %.1f%%\n", dev.SavingsAtLevel(level)*100)
}
