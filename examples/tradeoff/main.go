// Tradeoff: the user-facing power/quality decision. For one clip, sweep
// the paper's quality levels across all three characterised devices and
// report power saved, realised clipping, perceived-intensity error and the
// battery life gained — the information a streaming UI would surface when
// the user picks a quality level (§4.2: "the user decides if some quality
// can be traded for more power savings").
//
//	go run ./examples/tradeoff [clip]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/power"
	"repro/internal/scene"
	"repro/internal/video"
)

func main() {
	clipName := "spiderman2"
	if len(os.Args) > 1 {
		clipName = os.Args[1]
	}
	clip := video.ClipByName(clipName, video.LibraryOptions{
		W: 96, H: 72, FPS: 10, DurationScale: 0.2,
	})
	if clip == nil {
		log.Fatalf("unknown clip %q; pick one of %v", clipName, video.ClipNames())
	}
	src := core.ClipSource{Clip: clip}
	track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		log.Fatal(err)
	}

	const batteryWh = 7.4
	for _, dev := range display.Devices() {
		fmt.Printf("%s (%s panel, %s backlight)\n", dev.Name, dev.Panel, dev.Backlight)
		fmt.Printf("  %-8s %-12s %-12s %-10s %-12s %s\n",
			"quality", "backlight%", "total%", "clipped%", "mean err", "battery")
		for _, q := range compensate.QualityLevels {
			rep, err := core.Play(src, track, core.PlaybackOptions{
				Device: dev, Quality: q, EvaluateQuality: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			life := power.DefaultModel(dev).BatteryLifeHours(rep.Trace, batteryWh)
			fmt.Printf("  %-8.0f %-12.1f %-12.1f %-10.2f %-12.4f %.2fh\n",
				q*100, rep.BacklightSavings*100, rep.MeasuredTotalSavings*100,
				rep.MeanClipped*100, rep.MeanAbsErr, life)
		}
		fmt.Println()
	}
}
