// Streaming: the paper's full system model (Figure 1) on loopback TCP.
//
// A media server stores two clips. A client plays one directly from the
// server (which annotates and compensates offline); then a proxy node is
// inserted that pulls the *raw* stream from the server and performs the
// annotation and compensation itself, on the fly — demonstrating that
// "either the proxy or the server node suffices" (§3). Both sessions
// report their power accounting.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/stream"
	"repro/internal/video"
)

func main() {
	opt := video.LibraryOptions{W: 96, H: 72, FPS: 10, DurationScale: 0.15}
	catalog := map[string]core.Source{
		"returnoftheking": core.ClipSource{Clip: video.ClipByName("returnoftheking", opt)},
		"ice_age":         core.ClipSource{Clip: video.ClipByName("ice_age", opt)},
	}

	// Media server.
	server := stream.NewServer(catalog)
	server.SetLogf(func(string, ...any) {})
	serverAddr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	fmt.Printf("server listening on %s\n", serverAddr)

	// Proxy node, chained to the server.
	proxy := stream.NewProxy(serverAddr.String())
	proxy.SetLogf(func(string, ...any) {})
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	fmt.Printf("proxy  listening on %s (upstream %s)\n\n", proxyAddr, serverAddr)

	client := &stream.Client{Device: display.IPAQ5555()}

	play := func(label, addr, clip string, quality float64) {
		res, err := client.Play(addr, clip, quality)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %q at %.0f%% quality\n", label, clip, quality*100)
		fmt.Printf("  frames %d, scenes %d, stream %d bytes (annotations %d bytes)\n",
			res.Frames, res.Scenes, res.BytesStream, res.BytesAnn)
		fmt.Printf("  avg backlight %.0f/255 (%d switches)\n", res.AvgLevel, res.Switches)
		fmt.Printf("  backlight saved %.1f%%, total device saved %.1f%%\n\n",
			res.BacklightSavings*100, res.TotalSavings*100)
	}

	// Dark clip, straight from the annotating server.
	play("direct", serverAddr.String(), "returnoftheking", 0.10)
	// Same clip through the proxy path.
	play("via proxy", proxyAddr.String(), "returnoftheking", 0.10)
	// Bright clip: the technique is honest about its limits.
	play("direct", serverAddr.String(), "ice_age", 0.10)
}
