// Quickstart: annotate a video clip and simulate annotated playback on a
// PDA, printing the backlight power saved at each quality level.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/scene"
	"repro/internal/video"
)

func main() {
	// 1. Get a video source. The library synthesises clips with the
	// luminance structure of the paper's movie trailers; any type
	// implementing core.Source works.
	clip := video.ClipByName("returnoftheking", video.LibraryOptions{
		W: 120, H: 90, FPS: 10, DurationScale: 0.2,
	})
	src := core.ClipSource{Clip: clip}

	// 2. Offline analysis (server side): detect scenes and annotate the
	// stream with per-scene luminance targets at every quality level.
	track, scenes, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d frames, %d scenes, annotation track %d bytes\n\n",
		clip.Name, clip.TotalFrames(), len(scenes), track.Size())

	// 3. Playback (client side): the device follows the annotations,
	// setting its backlight once per scene through its inverse transfer
	// table. Sweep the paper's quality levels.
	dev := display.IPAQ5555()
	reports, err := core.Sweep(src, track, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-18s %-18s %s\n", "quality", "backlight saved", "total saved (DAQ)", "avg level")
	for _, rep := range reports {
		fmt.Printf("%-8.0f %-18.1f %-18.1f %.0f/255\n",
			rep.Quality*100, rep.BacklightSavings*100, rep.MeasuredTotalSavings*100, rep.AvgLevel)
	}
}
