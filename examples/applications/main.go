// Applications: the further annotation uses the paper names in §3 beyond
// backlight scaling — CPU frequency/voltage scaling and network packet
// scheduling, both possible because "the information is available even
// before decoding the data" — plus the battery-life translation of the
// savings and the ROI-protected end-credits scenario from §4.3.
//
//	go run ./examples/applications
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/display"
	"repro/internal/experiments"
	"repro/internal/video"
)

func main() {
	opt := experiments.Options{
		Library: video.LibraryOptions{W: 80, H: 60, FPS: 8, DurationScale: 0.15},
		Device:  display.IPAQ5555(),
	}

	dvsRows, err := experiments.DVSRows(opt, "i_robot")
	if err != nil {
		log.Fatal(err)
	}
	experiments.FprintDVS(os.Stdout, "i_robot", dvsRows)
	fmt.Println()

	netRows, err := experiments.NetworkRows(opt, "returnoftheking")
	if err != nil {
		log.Fatal(err)
	}
	experiments.FprintNetwork(os.Stdout, "returnoftheking", netRows)
	fmt.Println()

	batRows, err := experiments.BatteryRows(opt, "catwoman")
	if err != nil {
		log.Fatal(err)
	}
	experiments.FprintBattery(os.Stdout, "catwoman", batRows)
	fmt.Println()

	creditRows, err := experiments.CreditsRows(opt)
	if err != nil {
		log.Fatal(err)
	}
	experiments.FprintCredits(os.Stdout, creditRows)
	fmt.Println()

	adaptiveRows, err := experiments.AdaptiveRows(opt, 3)
	if err != nil {
		log.Fatal(err)
	}
	experiments.FprintAdaptive(os.Stdout, adaptiveRows)
}
